// Unit suite for the overload-control primitives (DESIGN.md §14): the
// tiered WDRR AdmissionController, the hysteretic BrownoutController, and
// the RateEstimator behind deadline-infeasible shedding. Everything here
// is deterministic — time points are passed in explicitly and payloads
// are trivial Item subclasses, so no sleeping, no model, no threads.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "serve/admission.h"
#include "util/status.h"

namespace infuserki::serve {
namespace {

using std::chrono::steady_clock;

/// Trivial queue payload carrying an id so pop order is observable.
struct Tag : AdmissionController::Item {
  explicit Tag(int id_in) : id(id_in) {}
  int id;
};

int TagId(const AdmissionController::Entry& entry) {
  return static_cast<const Tag*>(entry.item.get())->id;
}

AdmissionController::Entry MakeEntry(int id, const std::string& tenant,
                                     Priority priority) {
  AdmissionController::Entry entry;
  entry.item = std::make_unique<Tag>(id);
  entry.tenant = tenant;
  entry.priority = priority;
  return entry;
}

/// Offers and (on admission) pushes one tagged entry; returns the verdict.
AdmissionController::Verdict OfferPush(AdmissionController* controller,
                                       int id, const std::string& tenant,
                                       Priority priority,
                                       steady_clock::time_point now,
                                       int brownout_level = 0) {
  auto verdict = controller->Offer(tenant, priority, now, brownout_level);
  if (verdict.reason == ShedReason::kNone) {
    controller->Push(MakeEntry(id, tenant, priority));
  }
  return verdict;
}

std::vector<std::pair<std::string, int>> PopAll(
    AdmissionController* controller) {
  std::vector<std::pair<std::string, int>> order;
  AdmissionController::Entry entry;
  while (controller->PopNext(&entry)) {
    order.emplace_back(entry.tenant, TagId(entry));
  }
  return order;
}

TEST(AdmissionControllerTest, WeightedDeficitRoundRobinHonorsWeights) {
  AdmissionOptions options;
  options.tenants["heavy"].weight = 3.0;
  options.tenants["light"].weight = 1.0;
  AdmissionController controller(options, /*queue_capacity=*/64);

  const auto now = steady_clock::now();
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(OfferPush(&controller, i, "heavy", Priority::kNormal, now)
                  .reason,
              ShedReason::kNone);
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(OfferPush(&controller, 100 + i, "light", Priority::kNormal,
                        now)
                  .reason,
              ShedReason::kNone);
  }

  auto order = PopAll(&controller);
  ASSERT_EQ(order.size(), 8u);
  // With quantum 1.0 a full ring rotation credits heavy 3 requests for
  // every 1 of light: the first four pops must be 3x heavy then 1x light.
  int heavy_in_first_four = 0;
  for (int i = 0; i < 4; ++i) {
    if (order[i].first == "heavy") ++heavy_in_first_four;
  }
  EXPECT_EQ(heavy_in_first_four, 3);
  // Per-tenant FIFO order is preserved regardless of interleaving.
  std::vector<int> heavy_ids;
  std::vector<int> light_ids;
  for (const auto& [tenant, id] : order) {
    (tenant == "heavy" ? heavy_ids : light_ids).push_back(id);
  }
  EXPECT_EQ(heavy_ids, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(light_ids, (std::vector<int>{100, 101}));
}

TEST(AdmissionControllerTest, StrictPriorityAcrossTiers) {
  AdmissionController controller(AdmissionOptions{}, 16);
  const auto now = steady_clock::now();
  // Enqueue low and normal first; a late high-tier entry still pops first.
  OfferPush(&controller, 3, "a", Priority::kLow, now);
  OfferPush(&controller, 2, "a", Priority::kNormal, now);
  OfferPush(&controller, 1, "b", Priority::kHigh, now);

  auto order = PopAll(&controller);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].second, 1);
  EXPECT_EQ(order[1].second, 2);
  EXPECT_EQ(order[2].second, 3);
}

TEST(AdmissionControllerTest, GlobalQueueCapSheds) {
  AdmissionController controller(AdmissionOptions{}, /*queue_capacity=*/2);
  const auto now = steady_clock::now();
  EXPECT_EQ(OfferPush(&controller, 0, "a", Priority::kNormal, now).reason,
            ShedReason::kNone);
  EXPECT_EQ(OfferPush(&controller, 1, "b", Priority::kNormal, now).reason,
            ShedReason::kNone);
  EXPECT_EQ(OfferPush(&controller, 2, "c", Priority::kHigh, now).reason,
            ShedReason::kQueueFull);
  EXPECT_EQ(controller.size(), 2u);
}

TEST(AdmissionControllerTest, TenantCapShedsOnlyTheOffender) {
  AdmissionOptions options;
  options.tenants["flood"].queue_cap = 1;
  AdmissionController controller(options, /*queue_capacity=*/16);
  const auto now = steady_clock::now();

  EXPECT_EQ(OfferPush(&controller, 0, "flood", Priority::kNormal, now)
                .reason,
            ShedReason::kNone);
  EXPECT_EQ(OfferPush(&controller, 1, "flood", Priority::kNormal, now)
                .reason,
            ShedReason::kTenantCap);
  // A well-behaved tenant is unaffected by the flooder's cap.
  EXPECT_EQ(OfferPush(&controller, 2, "polite", Priority::kNormal, now)
                .reason,
            ShedReason::kNone);
  EXPECT_EQ(controller.tenant_depth("flood"), 1u);
  EXPECT_EQ(controller.tenant_depth("polite"), 1u);
}

TEST(AdmissionControllerTest, TokenBucketRateLimitsWithExactHint) {
  AdmissionOptions options;
  options.tenants["limited"].rate_qps = 2.0;
  options.tenants["limited"].burst = 1.0;
  AdmissionController controller(options, 16);
  const auto t0 = steady_clock::now();

  // Bucket is primed full: the first request spends the single token.
  EXPECT_EQ(OfferPush(&controller, 0, "limited", Priority::kNormal, t0)
                .reason,
            ShedReason::kNone);
  // Immediately after, the bucket is empty; the hint is the exact refill
  // time for one token at 2 qps: 0.5 s.
  auto verdict = controller.Offer("limited", Priority::kNormal, t0, 0);
  EXPECT_EQ(verdict.reason, ShedReason::kRateLimited);
  EXPECT_NEAR(verdict.retry_after_s, 0.5, 1e-9);
  // A rate-limit shed never burns tokens: after the refill interval the
  // bucket admits again.
  EXPECT_EQ(OfferPush(&controller, 1, "limited", Priority::kNormal,
                      t0 + std::chrono::milliseconds(600))
                .reason,
            ShedReason::kNone);
}

TEST(AdmissionControllerTest, BurstAllowsBackToBackThenLimits) {
  AdmissionOptions options;
  options.tenants["bursty"].rate_qps = 1.0;
  options.tenants["bursty"].burst = 3.0;
  AdmissionController controller(options, 16);
  const auto t0 = steady_clock::now();

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(OfferPush(&controller, i, "bursty", Priority::kNormal, t0)
                  .reason,
              ShedReason::kNone)
        << "burst admit " << i;
  }
  EXPECT_EQ(controller.Offer("bursty", Priority::kNormal, t0, 0).reason,
            ShedReason::kRateLimited);
}

TEST(AdmissionControllerTest, BrownoutRejectsLowTierOnly) {
  AdmissionController controller(AdmissionOptions{}, 16);
  const auto now = steady_clock::now();
  auto low = controller.Offer("a", Priority::kLow, now,
                              kBrownoutRejectLowLevel);
  EXPECT_EQ(low.reason, ShedReason::kBrownout);
  EXPECT_EQ(controller
                .Offer("a", Priority::kNormal, now, kBrownoutRejectLowLevel)
                .reason,
            ShedReason::kNone);
  // Below the reject level, kLow is still admitted.
  EXPECT_EQ(controller
                .Offer("a", Priority::kLow, now, kBrownoutBypassCacheLevel)
                .reason,
            ShedReason::kNone);
}

TEST(AdmissionControllerTest, DeferredEntryReturnsFirst) {
  AdmissionController controller(AdmissionOptions{}, 16);
  const auto now = steady_clock::now();
  OfferPush(&controller, 0, "a", Priority::kNormal, now);
  OfferPush(&controller, 1, "a", Priority::kHigh, now);

  AdmissionController::Entry entry;
  ASSERT_TRUE(controller.PopNext(&entry));
  EXPECT_EQ(TagId(entry), 1);  // high tier first
  // Scheduler could not fit it this iteration: defer it. It must come
  // back ahead of everything else on the very next pop.
  controller.Defer(std::move(entry));
  EXPECT_EQ(controller.size(), 2u);
  ASSERT_TRUE(controller.PopNext(&entry));
  EXPECT_EQ(TagId(entry), 1);
  ASSERT_TRUE(controller.PopNext(&entry));
  EXPECT_EQ(TagId(entry), 0);
  EXPECT_TRUE(controller.empty());
}

TEST(AdmissionControllerTest, DrainAllReturnsEverythingIncludingDeferred) {
  AdmissionController controller(AdmissionOptions{}, 16);
  const auto now = steady_clock::now();
  for (int i = 0; i < 3; ++i) {
    OfferPush(&controller, i, i % 2 ? "a" : "b", Priority::kNormal, now);
  }
  AdmissionController::Entry entry;
  ASSERT_TRUE(controller.PopNext(&entry));
  controller.Defer(std::move(entry));

  auto drained = controller.DrainAll();
  EXPECT_EQ(drained.size(), 3u);
  EXPECT_TRUE(controller.empty());
  EXPECT_EQ(controller.size(), 0u);
  EXPECT_EQ(controller.tenant_depth("a"), 0u);
  EXPECT_EQ(controller.tenant_depth("b"), 0u);
  AdmissionController::Entry none;
  EXPECT_FALSE(controller.PopNext(&none));
}

TEST(AdmissionControllerTest, AnonymousTenantBucketsAsDefault) {
  AdmissionOptions options;
  options.default_policy.queue_cap = 1;
  AdmissionController controller(options, 16);
  const auto now = steady_clock::now();
  EXPECT_EQ(OfferPush(&controller, 0, "", Priority::kNormal, now).reason,
            ShedReason::kNone);
  // "" and "default" share one bucket, so the cap applies across both.
  EXPECT_EQ(controller.Offer("default", Priority::kNormal, now, 0).reason,
            ShedReason::kTenantCap);
  EXPECT_EQ(controller.tenant_depth(""), 1u);
  EXPECT_EQ(controller.tenant_depth("default"), 1u);
}

TEST(AdmissionControllerTest, NameHelpers) {
  EXPECT_STREQ(PriorityName(Priority::kHigh), "high");
  EXPECT_STREQ(PriorityName(Priority::kNormal), "normal");
  EXPECT_STREQ(PriorityName(Priority::kLow), "low");
  EXPECT_STREQ(ShedReasonName(ShedReason::kQueueFull), "queue_full");
  EXPECT_STREQ(ShedReasonName(ShedReason::kTenantCap), "tenant_cap");
  EXPECT_STREQ(ShedReasonName(ShedReason::kRateLimited), "rate_limited");
  EXPECT_STREQ(ShedReasonName(ShedReason::kBrownout), "brownout");
  EXPECT_STREQ(ShedReasonName(ShedReason::kDeadlineInfeasible),
               "infeasible");
}

TEST(BrownoutControllerTest, EscalatesAfterEnterTicks) {
  BrownoutOptions options;
  options.enter_occupancy = 0.75;
  options.exit_occupancy = 0.25;
  options.enter_ticks = 3;
  options.exit_ticks = 2;
  BrownoutController brownout(options);

  EXPECT_EQ(brownout.Tick(0.9), 0);
  EXPECT_EQ(brownout.Tick(0.9), 0);
  EXPECT_EQ(brownout.Tick(0.9), 1);  // third consecutive over-threshold
  // The streak restarts per level: two more ticks are not enough.
  EXPECT_EQ(brownout.Tick(0.9), 1);
  EXPECT_EQ(brownout.Tick(0.9), 1);
  EXPECT_EQ(brownout.Tick(0.9), 2);
  EXPECT_EQ(brownout.level(), 2);
}

TEST(BrownoutControllerTest, DeadBandHoldsLevelAndResetsStreaks) {
  BrownoutOptions options;
  options.enter_occupancy = 0.75;
  options.exit_occupancy = 0.25;
  options.enter_ticks = 2;
  options.exit_ticks = 2;
  BrownoutController brownout(options);

  EXPECT_EQ(brownout.Tick(0.9), 0);
  // Dead-band observation resets the escalation streak...
  EXPECT_EQ(brownout.Tick(0.5), 0);
  EXPECT_EQ(brownout.Tick(0.9), 0);
  // ...so it takes two more over-threshold ticks to escalate.
  EXPECT_EQ(brownout.Tick(0.9), 1);
  // And a dead-band tick also resets the de-escalation streak.
  EXPECT_EQ(brownout.Tick(0.1), 1);
  EXPECT_EQ(brownout.Tick(0.5), 1);
  EXPECT_EQ(brownout.Tick(0.1), 1);
  EXPECT_EQ(brownout.Tick(0.1), 0);
}

TEST(BrownoutControllerTest, ClampsAtMaxLevelAndFloorsAtZero) {
  BrownoutOptions options;
  options.enter_ticks = 1;
  options.exit_ticks = 1;
  BrownoutController brownout(options);

  for (int i = 0; i < kBrownoutMaxLevel + 3; ++i) brownout.Tick(1.0);
  EXPECT_EQ(brownout.level(), kBrownoutMaxLevel);
  for (int i = 0; i < kBrownoutMaxLevel + 3; ++i) brownout.Tick(0.0);
  EXPECT_EQ(brownout.level(), 0);
}

TEST(RateEstimatorTest, ColdEstimatorProvesNothing) {
  RateEstimator estimator;
  EXPECT_FALSE(estimator.warmed());
  EXPECT_EQ(estimator.EstimateServiceSeconds(100, 100), 0.0);
}

TEST(RateEstimatorTest, SeededRatesGiveExactEstimate) {
  RateEstimator estimator;
  estimator.SeedRates(/*prefill_tokens_per_s=*/100.0,
                      /*decode_tokens_per_s=*/10.0);
  EXPECT_TRUE(estimator.warmed());
  // 50 prompt tokens at 100 tok/s + 5 decode tokens at 10 tok/s = 1.0 s.
  EXPECT_NEAR(estimator.EstimateServiceSeconds(50, 5), 1.0, 1e-9);
}

TEST(RateEstimatorTest, PureDecodeStepFeedsDecodeRate) {
  RateEstimator estimator;
  estimator.ObserveStep(/*prefill_tokens=*/0, /*decode_tokens=*/8,
                        /*seconds=*/0.5);
  EXPECT_NEAR(estimator.decode_tokens_per_s(), 16.0, 1e-9);
  EXPECT_EQ(estimator.prefill_tokens_per_s(), 0.0);
  EXPECT_FALSE(estimator.warmed());  // prefill rate still unknown
}

TEST(RateEstimatorTest, EwmaBlendsTowardNewSamples) {
  RateEstimator estimator(/*alpha=*/0.5);
  estimator.ObserveStep(0, 10, 1.0);  // first sample wins: 10 tok/s
  EXPECT_NEAR(estimator.decode_tokens_per_s(), 10.0, 1e-9);
  estimator.ObserveStep(0, 20, 1.0);  // blend: 0.5*10 + 0.5*20
  EXPECT_NEAR(estimator.decode_tokens_per_s(), 15.0, 1e-9);
}

TEST(RateEstimatorTest, MixedStepAttributesResidualToPrefill) {
  RateEstimator estimator;
  // Establish the decode rate first: 10 tok/s.
  estimator.ObserveStep(0, 10, 1.0);
  // A mixed step: 90 prefill tokens + 1 decode row over 1.0 s. The decode
  // row costs ~0.1 s at the known rate, so ~0.9 s is prefill time and the
  // prefill rate lands near 100 tok/s.
  estimator.ObserveStep(90, 1, 1.0);
  EXPECT_TRUE(estimator.warmed());
  EXPECT_NEAR(estimator.prefill_tokens_per_s(), 100.0, 5.0);
}

TEST(RateEstimatorTest, ObserveRequestTracksProcessingSeconds) {
  RateEstimator estimator(/*alpha=*/0.5);
  estimator.ObserveRequest(2.0);
  EXPECT_NEAR(estimator.request_seconds(), 2.0, 1e-9);
  estimator.ObserveRequest(4.0);
  EXPECT_NEAR(estimator.request_seconds(), 3.0, 1e-9);
}

TEST(RetryAfterHintTest, RoundTripsThroughStatusMessage) {
  util::Status shed = util::WithRetryAfter(
      util::Status::ResourceExhausted("shed (rate_limited), tenant t"), 0.5);
  EXPECT_FALSE(shed.ok());
  EXPECT_NEAR(util::RetryAfterSeconds(shed), 0.5, 1e-9);
  // Statuses without a hint parse as 0.
  EXPECT_EQ(
      util::RetryAfterSeconds(util::Status::ResourceExhausted("shed")), 0.0);
  EXPECT_EQ(util::RetryAfterSeconds(util::Status::OK()), 0.0);
}

}  // namespace
}  // namespace infuserki::serve
