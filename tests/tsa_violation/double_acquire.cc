// Seeded violation: acquiring the same mutex twice in one scope (self-
// deadlock on a non-recursive mutex). Must fail to compile under
// -Werror=thread-safety (asserted by check_violation.cmake); valid C++
// otherwise — it would deadlock at runtime, which is exactly the class of
// bug the analysis catches before a test ever runs.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void DoubleBump() {
    infuserki::util::MutexLock outer(mu_);
    infuserki::util::MutexLock inner(mu_);  // BUG: mu_ is already held
    ++value_;
  }

 private:
  infuserki::util::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.DoubleBump();
  return 0;
}
