// Seeded violation: reading a GUARDED_BY field without holding its mutex.
// Must fail to compile under -Werror=thread-safety (asserted by
// check_violation.cmake); valid C++ otherwise.
#include <cstddef>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Queue {
 public:
  size_t UnsafeDepth() const {
    return depth_;  // BUG: no lock held — the analysis must reject this
  }

  size_t Depth() const {
    infuserki::util::MutexLock lock(mu_);
    return depth_;
  }

 private:
  mutable infuserki::util::Mutex mu_;
  size_t depth_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue queue;
  return static_cast<int>(queue.UnsafeDepth() + queue.Depth());
}
