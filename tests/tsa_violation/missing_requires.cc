// Seeded violation: calling a REQUIRES(mu_) function without holding the
// mutex. Must fail to compile under -Werror=thread-safety (asserted by
// check_violation.cmake); valid C++ otherwise.
#include <cstddef>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Cache {
 public:
  size_t EvictAll() {
    return EvictLocked();  // BUG: caller does not hold mu_
  }

  size_t EvictAllSafely() {
    infuserki::util::MutexLock lock(mu_);
    return EvictLocked();
  }

 private:
  size_t EvictLocked() REQUIRES(mu_) { return entries_ = 0; }

  infuserki::util::Mutex mu_;
  size_t entries_ GUARDED_BY(mu_) = 4;
};

}  // namespace

int main() {
  Cache cache;
  return static_cast<int>(cache.EvictAll() + cache.EvictAllSafely());
}
