# Asserts one seeded locking-contract violation is caught at compile time.
#
# Usage:
#   cmake -DCOMPILER=<c++> -DTU=<file.cc> -DINCLUDE_DIR=<src> \
#         -P check_violation.cmake
#
# Two compiles of the same TU:
#   1. WITHOUT the analysis — must succeed, proving the TU is otherwise
#      valid C++ (a syntax error would "fail" step 2 for the wrong reason).
#   2. WITH -Werror=thread-safety — must fail, and the diagnostic must
#      mention thread safety, proving the analysis (not some other warning)
#      rejected it.
foreach(var COMPILER TU INCLUDE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_violation.cmake: missing -D${var}=...")
  endif()
endforeach()

set(BASE_FLAGS -std=c++20 -I${INCLUDE_DIR} -fsyntax-only)

execute_process(
  COMMAND ${COMPILER} ${BASE_FLAGS} ${TU}
  RESULT_VARIABLE clean_result
  ERROR_VARIABLE clean_stderr)
if(NOT clean_result EQUAL 0)
  message(FATAL_ERROR
      "${TU} must be valid C++ without the analysis, but failed:\n"
      "${clean_stderr}")
endif()

execute_process(
  COMMAND ${COMPILER} ${BASE_FLAGS} -Wthread-safety -Werror=thread-safety
          ${TU}
  RESULT_VARIABLE tsa_result
  ERROR_VARIABLE tsa_stderr)
if(tsa_result EQUAL 0)
  message(FATAL_ERROR
      "${TU} compiled clean under -Werror=thread-safety — the seeded "
      "violation was NOT caught; the analysis is off or the annotation "
      "macros expanded to nothing.")
endif()
if(NOT tsa_stderr MATCHES "thread-safety")
  message(FATAL_ERROR
      "${TU} failed for a reason other than a thread-safety diagnostic:\n"
      "${tsa_stderr}")
endif()
message(STATUS "seeded violation in ${TU} correctly rejected")
