#include <gtest/gtest.h>

#include "eval/experiment.h"

namespace infuserki::eval {
namespace {

// Shared tiny experiment: pretraining is the expensive part, so build it
// once for the whole suite.
class ExperimentFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentConfig config;
    config.domain = ExperimentConfig::Domain::kUmls;
    config.num_triplets = 48;
    config.seed = 33;
    config.arch.dim = 32;
    config.arch.num_layers = 4;
    config.arch.num_heads = 2;
    config.arch.ffn_hidden = 64;
    config.pretrain_steps = 500;
    config.eval_cap = 20;
    config.downstream_cap = 16;
    config.cache_dir = "";  // no caching in tests
    experiment_ = new Experiment(config);
    experiment_->Setup();
  }

  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }

  static Experiment* experiment_;
};

Experiment* ExperimentFixture::experiment_ = nullptr;

TEST_F(ExperimentFixture, DetectionPartitionsTriplets) {
  const core::DetectionResult& detection = experiment_->detection();
  EXPECT_EQ(detection.known.size() + detection.unknown.size(), 48u);
  EXPECT_FALSE(detection.known.empty());
  EXPECT_FALSE(detection.unknown.empty());
}

TEST_F(ExperimentFixture, EvalSetsRespectCaps) {
  EXPECT_LE(experiment_->nr_set().size(), 20u);
  EXPECT_LE(experiment_->rr_set().size(), 20u);
  for (int t = 1; t <= kg::kNumTemplates; ++t) {
    EXPECT_LE(experiment_->template_set(t).size(), 20u);
    EXPECT_FALSE(experiment_->template_set(t).empty());
    for (const kg::Mcq& mcq : experiment_->template_set(t)) {
      EXPECT_EQ(mcq.template_id, t);
    }
  }
}

TEST_F(ExperimentFixture, NrSetCoversOnlyUnknown) {
  const core::DetectionResult& detection = experiment_->detection();
  for (const kg::Mcq& mcq : experiment_->nr_set()) {
    EXPECT_FALSE(detection.is_known[mcq.triplet_index]);
  }
  for (const kg::Mcq& mcq : experiment_->rr_set()) {
    EXPECT_TRUE(detection.is_known[mcq.triplet_index]);
  }
}

TEST_F(ExperimentFixture, CloneIsIndependentAndIdentical) {
  auto clone = experiment_->CloneBaseModel();
  // Identical outputs.
  tensor::NoGradGuard no_grad;
  std::vector<int> tokens = {1, 5, 6, 7};
  tensor::Tensor a = experiment_->base_lm().Logits(tokens);
  tensor::Tensor b = clone->Logits(tokens);
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
  // Frozen by default, and mutating the clone leaves the master intact.
  EXPECT_FALSE(clone->Parameters()[0].requires_grad());
  clone->Parameters()[0].data()[0] += 1.0f;
  tensor::Tensor c = experiment_->base_lm().Logits(tokens);
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_FLOAT_EQ(a.data()[i], c.data()[i]);
  }
}

TEST_F(ExperimentFixture, TrainDataShape) {
  core::KiTrainData data = experiment_->BuildTrainData();
  const core::DetectionResult& detection = experiment_->detection();
  // Two seen templates per unknown triplet.
  EXPECT_EQ(data.unknown_qa.size(), 2 * detection.unknown.size());
  EXPECT_EQ(data.unknown_statements.size(), detection.unknown.size());
  EXPECT_FALSE(data.known_qa.empty());
  EXPECT_LE(data.unknown_yesno.size(), detection.unknown.size());
  EXPECT_EQ(data.kg, &experiment_->kg());
}

TEST_F(ExperimentFixture, VanillaScoresBounded) {
  MethodScores scores = experiment_->EvaluateVanilla();
  EXPECT_FALSE(scores.has_nr_rr);
  for (double f1 : scores.f1) {
    EXPECT_GE(f1, 0.0);
    EXPECT_LE(f1, 1.0);
  }
  EXPECT_GE(scores.downstream, 0.0);
  EXPECT_LE(scores.downstream, 1.0);
  // The base model was pretrained on T1 QA for its subset: seen-template
  // accuracy must be clearly above chance (0.25).
  EXPECT_GT(scores.f1[0], 0.3);
}

}  // namespace
}  // namespace infuserki::eval
