// Chaos soak gate for the serving layer (DESIGN.md §10/§11): hundreds of
// concurrent requests against the continuous-batching scheduler under
// injected compute + I/O faults, tight deadlines that expire mid-batch,
// mixed prompt lengths that overflow the step-token budget, and an
// undersized KV budget. The bar: zero crashes, no deadlock (the test
// finishing is the proof), bounded cache memory, exact status accounting,
// multi-row batch occupancy, and bit-exact greedy token streams for every
// request that completed — including degraded ones. Also run under the
// `tsan` CMake preset by scripts/check_build.sh and CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/adapter_stack.h"
#include "model/generation.h"
#include "model/serve_adapter.h"
#include "model/transformer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/adapter_registry.h"
#include "serve/server.h"
#include "text/tokenizer.h"
#include "util/atomic_file.h"
#include "util/fault.h"
#include "util/rng.h"

namespace infuserki::serve {
namespace {

using std::chrono::milliseconds;

constexpr size_t kRequests = 240;
constexpr size_t kSubmitters = 4;
constexpr size_t kMaxNew = 8;

// CI uploads the soak's trace + NDJSON stream as workflow artifacts; the
// env var points the test at the artifact staging dir (defaults to the
// gtest temp dir for local runs).
std::string ArtifactDir() {
  const char* dir = std::getenv("INFUSERKI_CHAOS_ARTIFACT_DIR");
  return (dir != nullptr && *dir != '\0') ? dir : ::testing::TempDir();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ServeChaos, SoakSurvivesComputeAndIoFaults) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  faults.Clear();
  obs::Registry& registry = obs::Registry::Get();
  registry.ResetAll();
  // Request-scoped tracing on for the whole soak: every request must come
  // back out of the chaos as one contiguous async track.
  obs::Tracer::Get().Enable(1 << 15);
  obs::Tracer::Get().Clear();
  const std::string artifact_dir = ArtifactDir();
  const std::string ndjson_path = artifact_dir + "/chaos_metrics.ndjson";
  const std::string trace_path = artifact_dir + "/chaos_trace.json";
  std::remove(ndjson_path.c_str());  // NDJSON appends; start clean

  std::vector<std::string> corpus = {
      "alpha beta gamma delta epsilon zeta eta theta iota kappa",
      "lambda mu nu xi omicron pi rho sigma tau upsilon phi chi",
  };
  text::Tokenizer tokenizer = text::Tokenizer::Build(corpus);
  model::TransformerConfig config;
  config.vocab_size = tokenizer.vocab_size();
  config.dim = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  config.max_seq_len = 48;
  util::Rng rng(23);
  model::TransformerLM lm(config, &rng);

  const std::vector<std::string> prompts = {
      "alpha beta gamma",
      "lambda mu nu xi",
      "sigma tau upsilon phi chi",
      "theta iota kappa lambda mu nu",
      "epsilon zeta",
      "pi rho sigma",
      "alpha gamma epsilon eta iota",
      "chi phi upsilon tau",
      "beta delta zeta theta kappa",
      "nu xi omicron pi rho sigma tau",
      "eta theta",
      "kappa mu omicron",
  };

  // References come from the single-threaded, fault-free greedy decoder,
  // computed before any fault is armed.
  std::vector<std::vector<int>> references;
  references.reserve(prompts.size());
  size_t reference_tokens = 0;
  for (const std::string& prompt : prompts) {
    references.push_back(model::GreedyDecode(
        lm, tokenizer.EncodeWithSpecials(prompt, false), kMaxNew));
    reference_tokens += references.back().size();
  }
  ASSERT_GT(reference_tokens, size_t{0});

  // Compute faults on every serve failpoint plus an I/O fault for the
  // metrics dump at the end. Probabilistic streams are deterministic per
  // seed, but thread interleaving decides which REQUEST absorbs each
  // fault — the assertions below hold for every interleaving.
  ASSERT_TRUE(faults
                  .Configure("serve/decode_step=prob:0.04:11;"
                             "serve/prefill=prob:0.08:5;"
                             "serve/tokenize=fail@7;"
                             "io/atomic_write=prob:0.5:3")
                  .ok());

  ServeOptions options;
  options.max_batch_rows = 6;
  // Tight enough that co-admitting two of the longer prompts overflows the
  // step budget, so the soak also churns through admission deferrals.
  options.max_batch_tokens = 16;
  options.queue_capacity = 24;
  // Undersized on purpose: room for roughly three of the twelve distinct
  // prompts, so eviction and re-prefill churn constantly.
  options.kv_budget_tokens = 20;
  options.default_max_new_tokens = kMaxNew;
  options.retry = {.max_attempts = 3, .base_delay_ms = 1};
  // Live exporter soaking alongside the chaos: queue-depth sampling plus
  // periodic NDJSON appends while every fault point fires.
  options.exporter.period = milliseconds(20);
  options.exporter.ndjson_path = ndjson_path;
  InferenceServer server(lm, tokenizer, options);

  struct Outcome {
    size_t prompt_index = 0;
    Response response;
  };
  std::vector<Outcome> outcomes(kRequests);

  // Submitters 0/1 flood asynchronously (exercises shedding and queue
  // pressure); submitters 2/3 run synchronously (guaranteed served
  // traffic). Every 7th request carries a near-impossible 3 ms deadline.
  auto build_request = [&](size_t k) {
    Request request;
    request.prompt = prompts[k % prompts.size()];
    request.max_new_tokens = kMaxNew;
    request.deadline = (k % 7 == 0) ? milliseconds(3) : milliseconds(5000);
    return request;
  };
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      if (t < 2) {
        std::vector<std::pair<size_t, std::future<Response>>> pending;
        for (size_t k = t; k < kRequests; k += kSubmitters) {
          pending.emplace_back(k, server.Submit(build_request(k)));
        }
        for (auto& [k, future] : pending) {
          outcomes[k] = {k % prompts.size(), future.get()};
        }
      } else {
        for (size_t k = t; k < kRequests; k += kSubmitters) {
          outcomes[k] = {k % prompts.size(),
                         server.Run(build_request(k))};
        }
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();

  // Every future resolved (the joins above) and the cache stayed within
  // its budget: bounded memory under churn.
  EXPECT_LE(server.cached_tokens(), options.kv_budget_tokens);

  size_t ok = 0, shed = 0, deadline = 0, degraded = 0, other = 0;
  for (size_t k = 0; k < kRequests; ++k) {
    const Outcome& outcome = outcomes[k];
    const std::vector<int>& reference = references[outcome.prompt_index];
    switch (outcome.response.status.code()) {
      case util::StatusCode::kOk:
        ++ok;
        if (outcome.response.degraded) ++degraded;
        // The resilience contract: every served stream is bit-exact with
        // the fault-free reference, cached or degraded, retried or not.
        EXPECT_EQ(outcome.response.tokens, reference)
            << "request " << k << " diverged (degraded="
            << outcome.response.degraded << ")";
        break;
      case util::StatusCode::kDeadlineExceeded: {
        ++deadline;
        // Partial results must be a prefix of the reference stream.
        const std::vector<int>& partial = outcome.response.tokens;
        ASSERT_LE(partial.size(), reference.size()) << "request " << k;
        for (size_t i = 0; i < partial.size(); ++i) {
          EXPECT_EQ(partial[i], reference[i])
              << "request " << k << " partial token " << i;
        }
        break;
      }
      case util::StatusCode::kResourceExhausted:
        ++shed;
        break;
      default:
        // Permanent failures are allowed under chaos, but only as typed
        // errors — anything else (aborts, hangs) fails the test itself.
        ++other;
    }
  }

  // The flood submitters outnumber queue + batch slots by an order of
  // magnitude, so shedding must have triggered; the synchronous
  // submitters guarantee a served population.
  EXPECT_GT(ok, size_t{0});
  EXPECT_GT(shed, size_t{0});
  // `other` covers typed permanent failures (e.g. three consecutive
  // injected faults); they must stay rare next to served traffic.
  EXPECT_LT(other, kRequests / 10);

  // Accounting conservation: every submitted request is classified
  // exactly once.
  obs::Registry::Snapshot snapshot = registry.TakeSnapshot();
  uint64_t requests = snapshot.counters.at("serve/requests");
  EXPECT_EQ(requests, kRequests);
  EXPECT_EQ(requests, snapshot.counters.at("serve/completed") +
                          snapshot.counters.at("serve/shed") +
                          snapshot.counters.at("serve/deadline_misses") +
                          snapshot.counters.at("serve/cancelled") +
                          snapshot.counters.at("serve/failures"));
  EXPECT_EQ(snapshot.counters.at("serve/completed"), ok);
  EXPECT_EQ(snapshot.counters.at("serve/shed"), shed);

  // The continuous-batching scheduler actually batched under load: an
  // occupancy sample is recorded per ragged step, at least one step ran
  // more than one row, and no step overfilled the slot pool.
  const obs::HistogramStats& occupancy =
      snapshot.histograms.at("serve/batch_occupancy");
  EXPECT_GT(occupancy.count, uint64_t{0});
  EXPECT_GT(occupancy.max,
            1.0 / static_cast<double>(options.max_batch_rows));
  EXPECT_LE(occupancy.max, 1.0);
  EXPECT_GE(snapshot.gauges.at("serve/batch_size"), 0.0);

  server.Shutdown();

  // Request-scoped tracing: every request — served, shed, deadline-missed,
  // or failed — carries a process-unique id and renders as one async track
  // whose "serve/request" span encloses every event on that track
  // (admission through completion, no orphaned events).
  std::map<uint64_t, std::vector<obs::AsyncSpanEvent>> tracks;
  for (const obs::AsyncSpanEvent& event : obs::Tracer::Get().AsyncEvents()) {
    tracks[event.track].push_back(event);
  }
  std::set<uint64_t> seen_ids;
  for (size_t k = 0; k < kRequests; ++k) {
    const Response& response = outcomes[k].response;
    ASSERT_NE(response.request_id, 0u) << "request " << k;
    EXPECT_TRUE(seen_ids.insert(response.request_id).second)
        << "duplicate request id for request " << k;
    auto it = tracks.find(response.request_id);
    ASSERT_NE(it, tracks.end()) << "no async track for request " << k;
    const obs::AsyncSpanEvent* lifecycle = nullptr;
    for (const obs::AsyncSpanEvent& event : it->second) {
      if (event.name == "serve/request") {
        ASSERT_EQ(lifecycle, nullptr)
            << "request " << k << " has two lifecycle spans";
        lifecycle = &event;
      }
    }
    ASSERT_NE(lifecycle, nullptr) << "request " << k;
    for (const obs::AsyncSpanEvent& event : it->second) {
      EXPECT_GE(event.begin_us, lifecycle->begin_us)
          << "request " << k << " event " << event.name;
      EXPECT_LE(event.end_us, lifecycle->end_us)
          << "request " << k << " event " << event.name;
    }
  }
  EXPECT_EQ(seen_ids.size(), kRequests);

  // The exporter soaked through the chaos and Shutdown() flushed a final
  // record, so the NDJSON stream ends on the post-soak totals.
  std::string ndjson = ReadFile(ndjson_path);
  ASSERT_FALSE(ndjson.empty());
  std::ostringstream final_requests;
  final_requests << "\"serve/requests\":" << kRequests;
  EXPECT_NE(ndjson.rfind(final_requests.str()), std::string::npos);

  // Chrome trace artifact: per-request swimlanes ride along with the
  // thread-scoped spans (format details are covered by obs_test).
  ASSERT_TRUE(obs::Tracer::Get().WriteChromeTrace(trace_path));
  std::string trace = ReadFile(trace_path);
  EXPECT_NE(trace.find("\"cat\":\"request\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"b\""), std::string::npos);
  obs::Tracer::Get().Disable();

  // I/O chaos: dump the metrics through the fault-injected atomic writer.
  // io/atomic_write fails half its hits; with retries this usually lands,
  // but either way it must fail closed — no partial file, no crash.
  std::string dump_path =
      ::testing::TempDir() + "/serve_chaos_metrics.json";
  util::Status dump_status = util::WriteFileAtomic(
      dump_path, registry.JsonDump(), "io/atomic_write",
      {.max_attempts = 4, .base_delay_ms = 1});
  if (!dump_status.ok()) {
    EXPECT_EQ(dump_status.code(), util::StatusCode::kInternal)
        << dump_status;
  }
  std::remove(dump_path.c_str());
  faults.Clear();
}

// Swap-under-load gate (DESIGN.md §12): hot-swap adapter versions through
// a live continuous-batching server at least 8 times during a 240-request
// soak with compute faults armed, after a corrupt checkpoint AND an
// injected `serve/adapter_load` fault each forced a registry rollback. The
// bar: zero crashes, zero cancellations (no request is dropped by a swap),
// exact serve/* conservation, and a bit-exact token stream for every
// request against the adapter version it was admitted under — the corrupt
// version never serves a single token.
TEST(ServeChaos, SwapUnderLoadServesEveryPinnedVersionBitExact) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  faults.Clear();
  obs::Registry& registry = obs::Registry::Get();
  registry.ResetAll();
  const std::string artifact_dir = ArtifactDir();
  const std::string swap_trace_path = artifact_dir + "/swap_trace.ndjson";

  std::vector<std::string> corpus = {
      "alpha beta gamma delta epsilon zeta eta theta iota kappa",
      "lambda mu nu xi omicron pi rho sigma tau upsilon phi chi",
  };
  text::Tokenizer tokenizer = text::Tokenizer::Build(corpus);
  model::TransformerConfig config;
  config.vocab_size = tokenizer.vocab_size();
  config.dim = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  config.max_seq_len = 48;
  util::Rng rng(29);
  model::TransformerLM lm(config, &rng);

  const std::vector<std::string> prompts = {
      "alpha beta gamma",
      "lambda mu nu xi",
      "sigma tau upsilon phi chi",
      "theta iota kappa lambda mu nu",
      "epsilon zeta",
      "pi rho sigma",
      "alpha gamma epsilon eta iota",
      "chi phi upsilon tau",
  };

  // --- Publish four distinct adapter versions. -------------------------
  std::string registry_dir =
      ::testing::TempDir() + "/swap_chaos_registry";
  std::filesystem::remove_all(registry_dir);
  AdapterRegistry adapters(registry_dir,
                           {.max_attempts = 3, .base_delay_ms = 1});
  std::vector<AdapterVersion> versions;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    core::AdapterStackOptions stack_options;
    stack_options.first_layer = 0;
    stack_options.last_layer = 1;
    stack_options.bottleneck = 4;
    stack_options.use_infuser = false;
    core::KnowledgeAdapterStack stack(config.dim, config.num_layers,
                                      stack_options);
    util::Rng weights(100 + seed);
    for (tensor::Tensor& t : stack.AdapterParameters()) {
      for (float& v : t.impl()->data) {
        v = static_cast<float>(weights.Normal(0.0, 0.1));
      }
    }
    auto exported = stack.ExportPositionWise();
    ASSERT_TRUE(exported.ok()) << exported.status();
    auto published = adapters.Publish(std::move(exported).value());
    ASSERT_TRUE(published.ok()) << published.status();
    versions.push_back(std::move(published).value());
  }

  // --- Rollback gate 1: a corrupt "newest" checkpoint is quarantined and
  // the walk rolls back to the newest good version. ---------------------
  std::string corrupt_path = adapters.VersionPath(5);
  {
    std::ofstream out(corrupt_path, std::ios::binary);
    out << "garbage that fails the CRC frame";
  }
  auto after_corrupt = adapters.LoadLatest();
  ASSERT_TRUE(after_corrupt.ok()) << after_corrupt.status();
  EXPECT_EQ(after_corrupt.value().sequence, uint64_t{4});
  EXPECT_TRUE(std::filesystem::exists(corrupt_path + ".corrupt"));
  EXPECT_FALSE(std::filesystem::exists(corrupt_path));

  // --- Rollback gate 2: an injected adapter-load fault with no retry
  // budget forces a second rollback (v4's file quarantines; its already
  // published in-memory handle keeps serving below). -------------------
  ASSERT_TRUE(faults.Configure("serve/adapter_load=fail@1").ok());
  AdapterRegistry strict(registry_dir,
                         {.max_attempts = 1, .base_delay_ms = 1});
  auto after_fault = strict.LoadLatest();
  ASSERT_TRUE(after_fault.ok()) << after_fault.status();
  EXPECT_EQ(after_fault.value().sequence, uint64_t{3});
  EXPECT_TRUE(
      std::filesystem::exists(adapters.VersionPath(4) + ".corrupt"));
  faults.Clear();
  uint64_t rollbacks =
      registry.GetCounter("serve/swap_rollbacks")->Value();
  EXPECT_GE(rollbacks, uint64_t{2});

  // --- Per-version sequential references, computed fault-free. ---------
  // refs[sequence][prompt_index]; sequence 0 is the base model.
  std::map<uint64_t, std::vector<std::vector<int>>> refs;
  refs[0] = {};
  for (const std::string& prompt : prompts) {
    refs[0].push_back(model::GreedyDecode(
        lm, tokenizer.EncodeWithSpecials(prompt, false), kMaxNew));
  }
  for (const AdapterVersion& version : versions) {
    model::PositionWiseAdapterHook hook(version.adapter.get());
    std::vector<std::vector<int>>& streams = refs[version.sequence];
    for (const std::string& prompt : prompts) {
      streams.push_back(model::GreedyDecode(
          lm, tokenizer.EncodeWithSpecials(prompt, false), kMaxNew,
          hook.Options()));
    }
  }

  // --- The soak: compute faults armed, queue sized so nothing sheds —
  // a swap must never cost a single request. ----------------------------
  ASSERT_TRUE(faults
                  .Configure("serve/decode_step=prob:0.04:11;"
                             "serve/prefill=prob:0.08:5;"
                             "serve/tokenize=fail@7")
                  .ok());
  ServeOptions options;
  options.max_batch_rows = 6;
  options.max_batch_tokens = 16;
  options.queue_capacity = kRequests;  // no shedding: every request runs
  options.kv_budget_tokens = 20;
  options.default_max_new_tokens = kMaxNew;
  options.retry = {.max_attempts = 3, .base_delay_ms = 1};
  InferenceServer server(lm, tokenizer, options);

  struct Outcome {
    size_t prompt_index = 0;
    Response response;
  };
  std::vector<Outcome> outcomes(kRequests);
  std::atomic<bool> soak_done{false};

  // Swapper thread: cycles every published version plus the base model
  // through the live server while the soak runs, recording an NDJSON
  // trace line per swap for the CI artifact.
  std::vector<std::string> swap_trace;
  std::thread swapper([&] {
    size_t swaps = 0;
    while (!soak_done.load(std::memory_order_acquire)) {
      AdapterVersion next;  // every 5th swap returns to the base model
      if (swaps % 5 != 4) next = versions[swaps % 5 % versions.size()];
      uint64_t sequence = next.sequence;
      server.SwapAdapters(std::move(next));
      std::ostringstream line;
      line << "{\"swap\":" << swaps << ",\"sequence\":" << sequence
           << ",\"t_us\":" << obs::NowMicros() << "}";
      swap_trace.push_back(line.str());
      ++swaps;
      std::this_thread::sleep_for(milliseconds(2));
    }
  });

  auto build_request = [&](size_t k) {
    Request request;
    request.prompt = prompts[k % prompts.size()];
    request.max_new_tokens = kMaxNew;
    request.deadline = (k % 9 == 0) ? milliseconds(3) : milliseconds(30000);
    return request;
  };
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      if (t < 2) {
        std::vector<std::pair<size_t, std::future<Response>>> pending;
        for (size_t k = t; k < kRequests; k += kSubmitters) {
          pending.emplace_back(k, server.Submit(build_request(k)));
        }
        for (auto& [k, future] : pending) {
          outcomes[k] = {k % prompts.size(), future.get()};
        }
      } else {
        for (size_t k = t; k < kRequests; k += kSubmitters) {
          outcomes[k] = {k % prompts.size(),
                         server.Run(build_request(k))};
        }
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  soak_done.store(true, std::memory_order_release);
  swapper.join();

  EXPECT_LE(server.cached_tokens(), options.kv_budget_tokens);
  EXPECT_GE(swap_trace.size(), size_t{8})
      << "soak finished before enough live swaps landed";

  // --- Every response checks against the version it was pinned to. -----
  size_t ok = 0, deadline = 0, other = 0;
  std::set<uint64_t> served_sequences;
  for (size_t k = 0; k < kRequests; ++k) {
    const Outcome& outcome = outcomes[k];
    uint64_t sequence = outcome.response.adapter_sequence;
    ASSERT_TRUE(refs.count(sequence))
        << "request " << k << " served under unpublished version "
        << sequence;
    const std::vector<int>& reference =
        refs[sequence][outcome.prompt_index];
    switch (outcome.response.status.code()) {
      case util::StatusCode::kOk:
        ++ok;
        served_sequences.insert(sequence);
        EXPECT_EQ(outcome.response.tokens, reference)
            << "request " << k << " diverged from version " << sequence
            << " (degraded=" << outcome.response.degraded << ")";
        break;
      case util::StatusCode::kDeadlineExceeded: {
        ++deadline;
        const std::vector<int>& partial = outcome.response.tokens;
        ASSERT_LE(partial.size(), reference.size()) << "request " << k;
        for (size_t i = 0; i < partial.size(); ++i) {
          EXPECT_EQ(partial[i], reference[i])
              << "request " << k << " partial token " << i
              << " under version " << sequence;
        }
        break;
      }
      default:
        ++other;
    }
  }
  EXPECT_GT(ok, size_t{0});
  EXPECT_LT(other, kRequests / 10);
  // The quarantined sequence (5) must never have served: its references
  // were never computed, so the ASSERT above already proves it — this
  // documents the invariant.
  EXPECT_EQ(served_sequences.count(5), size_t{0});

  // Conservation, with the swap-specific clause: a hot-swap cancels
  // nothing and sheds nothing — every request completed or missed its own
  // deadline.
  uint64_t requests = registry.GetCounter("serve/requests")->Value();
  EXPECT_EQ(requests, kRequests);
  EXPECT_EQ(requests,
            registry.GetCounter("serve/completed")->Value() +
                registry.GetCounter("serve/shed")->Value() +
                registry.GetCounter("serve/deadline_misses")->Value() +
                registry.GetCounter("serve/cancelled")->Value() +
                registry.GetCounter("serve/failures")->Value());
  EXPECT_EQ(registry.GetCounter("serve/cancelled")->Value(), uint64_t{0});
  EXPECT_EQ(registry.GetCounter("serve/shed")->Value(), uint64_t{0});
  EXPECT_GE(registry.GetCounter("serve/swap_applied")->Value(),
            uint64_t{8});
  EXPECT_GE(registry.GetCounter("serve/swap_published")->Value(),
            uint64_t{4});
  EXPECT_GE(registry.GetCounter("serve/swap_rollbacks")->Value(),
            uint64_t{2});

  server.Shutdown();

  // Swap trace artifact for CI (one NDJSON line per live swap).
  std::ostringstream trace_blob;
  for (const std::string& line : swap_trace) trace_blob << line << "\n";
  ASSERT_TRUE(util::WriteFileAtomic(swap_trace_path, trace_blob.str(),
                                    "io/atomic_write",
                                    {.max_attempts = 3, .base_delay_ms = 1})
                  .ok());
  faults.Clear();
}

// Overload-control gate (DESIGN.md §14): a 3x-offered-load bursty soak
// against the tiered admission stack, in three phases on one live server.
//   A — uncontended baseline: a high-tier tenant alone, p99 recorded.
//   B — fairness: two low-tier tenants flood open-loop in bursts while the
//       high-tier tenant keeps submitting closed-loop. The bar: the vip
//       p99 stays within 1.5x of the uncontended baseline (+50 ms noise
//       floor), the flood is shed by ITS caps/rate limits, and every shed
//       response carries a nonzero retry_after hint (in the response field
//       AND parseable from the status message).
//   C — chaos: `serve/decode_stall` wedges a decode step mid-burst with
//       compute faults armed; the watchdog must detect the stall, fail the
//       stuck batch with kUnavailable, and recover — with every submitted
//       future resolving and serve/* conservation staying exact across all
//       three phases.
TEST(ServeChaos, OverloadSoakFairnessShedHintsAndWatchdogRecovery) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  faults.Clear();
  obs::Registry& registry = obs::Registry::Get();
  registry.ResetAll();
  const std::string artifact_dir = ArtifactDir();
  const std::string report_path = artifact_dir + "/overload_soak.ndjson";

  std::vector<std::string> corpus = {
      "alpha beta gamma delta epsilon zeta eta theta iota kappa",
      "lambda mu nu xi omicron pi rho sigma tau upsilon phi chi",
  };
  text::Tokenizer tokenizer = text::Tokenizer::Build(corpus);
  model::TransformerConfig config;
  config.vocab_size = tokenizer.vocab_size();
  config.dim = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  config.max_seq_len = 48;
  util::Rng rng(31);
  model::TransformerLM lm(config, &rng);

  const std::vector<std::string> prompts = {
      "alpha beta gamma", "lambda mu nu xi", "epsilon zeta",
      "pi rho sigma",     "eta theta",       "kappa mu omicron",
  };

  ServeOptions options;
  options.max_batch_rows = 4;
  options.max_batch_tokens = 24;
  options.queue_capacity = 16;
  options.kv_budget_tokens = 64;
  options.default_max_new_tokens = 4;
  options.retry = {.max_attempts = 3, .base_delay_ms = 1};
  // Targeted shedding: each flood tenant pays for its own burstiness; the
  // vip tenant has no cap and triple WDRR weight.
  options.admission.tenants["vip"].weight = 3.0;
  options.admission.tenants["batch"].queue_cap = 6;
  options.admission.tenants["scraper"].queue_cap = 6;
  options.admission.tenants["scraper"].rate_qps = 200.0;
  options.admission.tenants["scraper"].burst = 20.0;
  options.watchdog_interval = milliseconds(20);
  options.watchdog_stall_timeout = milliseconds(250);
  InferenceServer server(lm, tokenizer, options);

  auto vip_request = [&](size_t k) {
    Request request;
    request.prompt = prompts[k % prompts.size()];
    request.max_new_tokens = 4;
    request.tenant_id = "vip";
    request.priority = Priority::kHigh;
    return request;
  };
  auto flood_request = [&](const std::string& tenant, size_t k) {
    Request request;
    request.prompt = prompts[k % prompts.size()];
    request.max_new_tokens = 2;
    request.tenant_id = tenant;
    request.priority = Priority::kLow;
    return request;
  };
  // p99 over a sorted latency vector (nearest-rank).
  auto p99 = [](std::vector<double> xs) {
    std::sort(xs.begin(), xs.end());
    size_t rank = static_cast<size_t>(0.99 * static_cast<double>(xs.size()));
    return xs[std::min(rank, xs.size() - 1)];
  };

  std::atomic<size_t> submitted{0};
  // Every shed observed anywhere in the soak must carry a usable hint.
  std::atomic<size_t> sheds_seen{0};
  auto classify = [&](const Response& response) {
    if (response.status.code() == util::StatusCode::kResourceExhausted) {
      sheds_seen.fetch_add(1, std::memory_order_relaxed);
      EXPECT_GT(response.retry_after_seconds, 0.0) << response.status;
      EXPECT_GT(util::RetryAfterSeconds(response.status), 0.0)
          << response.status;
    }
  };

  // --- Phase A: uncontended high-tier baseline. ------------------------
  constexpr size_t kBaseline = 60;
  std::vector<double> baseline_latencies;
  for (size_t k = 0; k < kBaseline; ++k) {
    Response response = server.Run(vip_request(k));
    ++submitted;
    ASSERT_TRUE(response.status.ok()) << "baseline " << k << ": "
                                      << response.status;
    baseline_latencies.push_back(response.total_seconds);
  }
  const double baseline_p99 = p99(baseline_latencies);

  // --- Phase B: low-tier burst flood vs closed-loop vip traffic. -------
  constexpr size_t kVip = 101;
  constexpr size_t kFloodCap = 300;  // per flood tenant, 3x+ offered load
  std::atomic<bool> vip_done{false};
  std::vector<double> vip_latencies;
  std::vector<std::thread> flooders;
  for (const std::string tenant : {"batch", "scraper"}) {
    flooders.emplace_back([&, tenant] {
      util::Rng jitter(tenant == "batch" ? 41 : 43);
      std::vector<std::future<Response>> pending;
      size_t sent = 0;
      while (!vip_done.load(std::memory_order_acquire) &&
             sent < kFloodCap) {
        // Bursts of 12 back-to-back, then a short jittered gap: open-loop
        // arrivals that overrun the queue in spikes, not a smooth stream.
        for (int b = 0; b < 12 && sent < kFloodCap; ++b, ++sent) {
          pending.push_back(server.Submit(flood_request(tenant, sent)));
          ++submitted;
        }
        std::this_thread::sleep_for(
            milliseconds(1 + static_cast<int>(jitter.Uniform(0.0, 3.0))));
      }
      for (std::future<Response>& f : pending) classify(f.get());
    });
  }
  size_t vip_ok = 0;
  for (size_t k = 0; k < kVip; ++k) {
    Response response = server.Run(vip_request(k));
    ++submitted;
    classify(response);
    if (response.status.ok()) {
      ++vip_ok;
      vip_latencies.push_back(response.total_seconds);
    }
  }
  vip_done.store(true, std::memory_order_release);
  for (std::thread& flooder : flooders) flooder.join();

  // The vip tenant has no cap or rate limit and the flood tenants' caps
  // keep the global queue under capacity: every vip request serves.
  EXPECT_EQ(vip_ok, kVip);
  const double vip_p99 = p99(vip_latencies);
  EXPECT_LE(vip_p99, 1.5 * baseline_p99 + 0.050)
      << "vip p99 " << vip_p99 << "s vs uncontended " << baseline_p99
      << "s: the flood leaked into the high tier";
  // The 3x flood actually overran the offenders' budgets.
  EXPECT_GT(sheds_seen.load(), size_t{0});
  // Targeted shedding: with its caps and rate limits the flood paid for
  // its own burstiness — the uncapped vip tenant shed nothing in the
  // fairness phase. (Phase C below intentionally overruns the GLOBAL
  // queue with vip bursts too, so this is checked here, not at the end.)
  EXPECT_EQ(registry.GetCounter("serve/tenant/vip/shed")->Value(),
            uint64_t{0});
  EXPECT_GT(registry.GetCounter("serve/tenant/batch/shed")->Value() +
                registry.GetCounter("serve/tenant/scraper/shed")->Value(),
            uint64_t{0});

  // --- Phase C: stall + compute chaos under a mixed burst. -------------
  ASSERT_TRUE(faults
                  .Configure("serve/decode_stall=fail@1;"
                             "serve/decode_step=prob:0.03:13;"
                             "serve/prefill=prob:0.06:7")
                  .ok());
  constexpr size_t kChaosPerTenant = 60;
  std::vector<std::thread> chaos_submitters;
  std::atomic<size_t> chaos_resolved{0};
  for (const std::string tenant : {"vip", "batch", "scraper"}) {
    chaos_submitters.emplace_back([&, tenant] {
      std::vector<std::future<Response>> pending;
      for (size_t k = 0; k < kChaosPerTenant; ++k) {
        if (tenant == "vip") {
          pending.push_back(server.Submit(vip_request(k)));
        } else {
          pending.push_back(server.Submit(flood_request(tenant, k)));
        }
        ++submitted;
        if (k % 12 == 11) std::this_thread::sleep_for(milliseconds(2));
      }
      for (std::future<Response>& f : pending) {
        Response response = f.get();
        classify(response);
        switch (response.status.code()) {
          case util::StatusCode::kOk:
          case util::StatusCode::kResourceExhausted:
          case util::StatusCode::kDeadlineExceeded:
          case util::StatusCode::kCancelled:
          case util::StatusCode::kUnavailable:
          case util::StatusCode::kInternal:
            break;
          default:
            ADD_FAILURE() << tenant
                          << " request got unexpected code: "
                          << response.status;
        }
        chaos_resolved.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& s : chaos_submitters) s.join();
  EXPECT_EQ(chaos_resolved.load(), 3 * kChaosPerTenant);

  // The watchdog caught the wedged decode step and brought the scheduler
  // back: later chaos requests were served by the rebuilt session (the
  // joins above prove no queued work was dropped).
  EXPECT_GE(registry.GetCounter("serve/watchdog_stalls")->Value(),
            uint64_t{1});
  EXPECT_GE(registry.GetCounter("serve/watchdog_recoveries")->Value(),
            uint64_t{1});

  server.Shutdown();

  // Conservation across all three phases, exact: every submitted request
  // classified exactly once.
  uint64_t requests = registry.GetCounter("serve/requests")->Value();
  EXPECT_EQ(requests, submitted.load());
  EXPECT_EQ(requests,
            registry.GetCounter("serve/completed")->Value() +
                registry.GetCounter("serve/shed")->Value() +
                registry.GetCounter("serve/deadline_misses")->Value() +
                registry.GetCounter("serve/cancelled")->Value() +
                registry.GetCounter("serve/failures")->Value());
  // The per-reason split also sums to the total shed count (§14).
  EXPECT_EQ(registry.GetCounter("serve/shed")->Value(),
            registry.GetCounter("serve/shed_queue_full")->Value() +
                registry.GetCounter("serve/shed_tenant_cap")->Value() +
                registry.GetCounter("serve/shed_rate_limited")->Value() +
                registry.GetCounter("serve/shed_brownout")->Value() +
                registry.GetCounter("serve/shed_infeasible")->Value());
  EXPECT_EQ(registry.GetCounter("serve/shed")->Value(), sheds_seen.load());

  // Artifact for the nightly soak job: one NDJSON line with the headline
  // numbers CI graphs over time.
  std::ostringstream report;
  report << "{\"baseline_p99_s\":" << baseline_p99
         << ",\"vip_p99_s\":" << vip_p99
         << ",\"sheds\":" << sheds_seen.load()
         << ",\"stalls\":"
         << registry.GetCounter("serve/watchdog_stalls")->Value()
         << ",\"recoveries\":"
         << registry.GetCounter("serve/watchdog_recoveries")->Value()
         << ",\"brownout_transitions\":"
         << registry.GetCounter("serve/brownout_transitions")->Value()
         << "}\n";
  ASSERT_TRUE(util::WriteFileAtomic(report_path, report.str(),
                                    "io/atomic_write",
                                    {.max_attempts = 3, .base_delay_ms = 1})
                  .ok());
  faults.Clear();
}

}  // namespace
}  // namespace infuserki::serve
