#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "tests/gradcheck.h"
#include "util/rng.h"

namespace infuserki::tensor {
namespace {

using infuserki::testing::ExpectGradientsMatch;

Tensor RandInput(Shape shape, uint64_t seed, float stddev = 1.0f) {
  util::Rng rng(seed);
  return Tensor::Randn(std::move(shape), &rng, stddev,
                       /*requires_grad=*/true);
}

TEST(GradCheck, AddSameShape) {
  Tensor a = RandInput({3, 4}, 1);
  Tensor b = RandInput({3, 4}, 2);
  ExpectGradientsMatch([&] { return SumAll(Add(a, b)); }, {a, b});
}

TEST(GradCheck, AddBroadcastBias) {
  Tensor a = RandInput({3, 4}, 3);
  Tensor b = RandInput({4}, 4);
  ExpectGradientsMatch([&] { return SumAll(Mul(Add(a, b), Add(a, b))); },
                       {a, b});
}

TEST(GradCheck, AddBroadcastScalar) {
  Tensor a = RandInput({2, 3}, 5);
  Tensor s = RandInput({1}, 6);
  ExpectGradientsMatch([&] { return SumAll(Mul(Add(a, s), a)); }, {a, s});
}

TEST(GradCheck, SubAndMul) {
  Tensor a = RandInput({2, 5}, 7);
  Tensor b = RandInput({2, 5}, 8);
  ExpectGradientsMatch([&] { return SumAll(Mul(Sub(a, b), b)); }, {a, b});
}

TEST(GradCheck, MulScalarAndAddScalar) {
  Tensor a = RandInput({6}, 9);
  ExpectGradientsMatch(
      [&] { return SumAll(MulScalar(AddScalar(a, 1.5f), -2.0f)); }, {a});
}

TEST(GradCheck, Matmul) {
  Tensor a = RandInput({3, 4}, 10);
  Tensor b = RandInput({4, 2}, 11);
  ExpectGradientsMatch([&] { return SumAll(Mul(Matmul(a, b), Matmul(a, b))); },
                       {a, b});
}

TEST(GradCheck, MatmulNT) {
  Tensor a = RandInput({3, 4}, 12);
  Tensor b = RandInput({5, 4}, 13);
  ExpectGradientsMatch([&] { return MeanAll(MatmulNT(a, b)); }, {a, b});
}

TEST(GradCheck, Transpose) {
  Tensor a = RandInput({3, 4}, 14);
  ExpectGradientsMatch(
      [&] { return SumAll(Mul(Transpose(a), Transpose(a))); }, {a});
}

TEST(GradCheck, Reshape) {
  Tensor a = RandInput({2, 6}, 15);
  ExpectGradientsMatch(
      [&] { return SumAll(Mul(Reshape(a, {3, 4}), Reshape(a, {3, 4}))); },
      {a});
}

TEST(GradCheck, Relu) {
  // Offset away from zero: ReLU is non-differentiable at the kink.
  Tensor a = RandInput({10}, 16);
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a.data()[i]) < 0.1f) a.data()[i] += 0.5f;
  }
  ExpectGradientsMatch([&] { return SumAll(Mul(Relu(a), a)); }, {a});
}

TEST(GradCheck, Gelu) {
  Tensor a = RandInput({10}, 17);
  ExpectGradientsMatch([&] { return SumAll(Gelu(a)); }, {a});
}

TEST(GradCheck, Silu) {
  Tensor a = RandInput({10}, 18);
  ExpectGradientsMatch([&] { return SumAll(Silu(a)); }, {a});
}

TEST(GradCheck, SigmoidAndTanh) {
  Tensor a = RandInput({8}, 19);
  ExpectGradientsMatch([&] { return SumAll(Mul(Sigmoid(a), Tanh(a))); },
                       {a});
}

TEST(GradCheck, Softmax) {
  Tensor a = RandInput({3, 5}, 20);
  Tensor w = RandInput({3, 5}, 21);
  ExpectGradientsMatch([&] { return SumAll(Mul(Softmax(a), w)); }, {a, w});
}

TEST(GradCheck, RmsNorm) {
  Tensor x = RandInput({3, 6}, 22);
  Tensor w = RandInput({6}, 23);
  ExpectGradientsMatch([&] { return SumAll(Mul(RmsNorm(x, w), x)); },
                       {x, w});
}

TEST(GradCheck, LayerNorm) {
  Tensor x = RandInput({3, 6}, 24);
  Tensor w = RandInput({6}, 25);
  Tensor b = RandInput({6}, 26);
  ExpectGradientsMatch(
      [&] { return SumAll(Mul(LayerNorm(x, w, b), x)); }, {x, w, b});
}

TEST(GradCheck, EmbeddingLookup) {
  Tensor table = RandInput({7, 4}, 27);
  std::vector<int> ids = {2, 5, 2, 0};
  ExpectGradientsMatch(
      [&] {
        Tensor rows = EmbeddingLookup(table, ids);
        return SumAll(Mul(rows, rows));
      },
      {table});
}

TEST(GradCheck, GatherRows) {
  Tensor a = RandInput({6, 3}, 28);
  std::vector<int> rows = {1, 4, 1};
  ExpectGradientsMatch(
      [&] {
        Tensor picked = GatherRows(a, rows);
        return SumAll(Mul(picked, picked));
      },
      {a});
}

TEST(GradCheck, Concat1d) {
  Tensor a = RandInput({4}, 29);
  Tensor b = RandInput({3}, 30);
  ExpectGradientsMatch(
      [&] {
        Tensor c = Concat1d(a, b);
        return SumAll(Mul(c, c));
      },
      {a, b});
}

TEST(GradCheck, ConcatRows) {
  Tensor a = RandInput({2, 3}, 31);
  Tensor b = RandInput({4, 3}, 32);
  ExpectGradientsMatch(
      [&] {
        Tensor c = ConcatRows(a, b);
        return SumAll(Mul(c, c));
      },
      {a, b});
}

TEST(GradCheck, MeanReductions) {
  Tensor a = RandInput({4, 3}, 33);
  ExpectGradientsMatch([&] { return MeanAll(Mul(a, a)); }, {a});
  ExpectGradientsMatch(
      [&] {
        Tensor m = MeanAxis0(a);
        return SumAll(Mul(m, m));
      },
      {a});
}

TEST(GradCheck, CrossEntropy) {
  Tensor logits = RandInput({4, 6}, 34);
  std::vector<int> targets = {1, 5, 0, 3};
  ExpectGradientsMatch([&] { return CrossEntropy(logits, targets); },
                       {logits});
}

TEST(GradCheck, CrossEntropyIgnoreIndex) {
  Tensor logits = RandInput({4, 6}, 35);
  std::vector<int> targets = {1, -1, 0, -1};
  ExpectGradientsMatch([&] { return CrossEntropy(logits, targets, -1); },
                       {logits});
}

TEST(GradCheck, BceWithLogits) {
  Tensor logits = RandInput({6}, 36);
  std::vector<float> targets = {1, 0, 1, 1, 0, 0};
  ExpectGradientsMatch([&] { return BceWithLogits(logits, targets); },
                       {logits});
}

TEST(GradCheck, CausalSelfAttention) {
  Tensor q = RandInput({4, 8}, 37, 0.5f);
  Tensor k = RandInput({4, 8}, 38, 0.5f);
  Tensor v = RandInput({4, 8}, 39, 0.5f);
  ExpectGradientsMatch(
      [&] {
        Tensor out = CausalSelfAttention(q, k, v, /*num_heads=*/2);
        return SumAll(Mul(out, out));
      },
      {q, k, v});
}

TEST(GradCheck, CausalSelfAttentionWithPrefix) {
  Tensor q = RandInput({3, 8}, 40, 0.5f);
  Tensor k = RandInput({5, 8}, 41, 0.5f);  // prefix_len 2 + 3 queries
  Tensor v = RandInput({5, 8}, 42, 0.5f);
  ExpectGradientsMatch(
      [&] {
        Tensor out =
            CausalSelfAttention(q, k, v, /*num_heads=*/2, /*prefix_len=*/2);
        return SumAll(Mul(out, out));
      },
      {q, k, v});
}

// Property sweep: attention gradcheck across head counts and prefix sizes.
class AttentionGradSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(AttentionGradSweep, Matches) {
  auto [heads, prefix] = GetParam();
  size_t dim = 8;
  Tensor q = RandInput({3, dim}, 50 + heads * 10 + prefix, 0.5f);
  Tensor k = RandInput({3 + prefix, dim}, 60 + heads * 10 + prefix, 0.5f);
  Tensor v = RandInput({3 + prefix, dim}, 70 + heads * 10 + prefix, 0.5f);
  ExpectGradientsMatch(
      [&, h = heads, p = prefix] {
        return SumAll(CausalSelfAttention(q, k, v, h, p));
      },
      {q, k, v});
}

INSTANTIATE_TEST_SUITE_P(
    HeadsAndPrefixes, AttentionGradSweep,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{2}, size_t{4}),
                       ::testing::Values(size_t{0}, size_t{1}, size_t{4})));

}  // namespace
}  // namespace infuserki::tensor
