#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "tensor/checkpoint.h"
#include "tensor/nn.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "util/rng.h"

namespace infuserki::tensor {
namespace {

TEST(Linear, ShapesAndBias) {
  util::Rng rng(1);
  Linear linear(4, 3, &rng);
  Tensor x = Tensor::Randn({2, 4}, &rng);
  Tensor y = linear.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  EXPECT_EQ(linear.NumParameters(), 4u * 3u + 3u);
}

TEST(Linear, NoBias) {
  util::Rng rng(2);
  Linear linear(4, 3, &rng, /*with_bias=*/false);
  EXPECT_EQ(linear.NumParameters(), 12u);
  // Zero input -> zero output without bias.
  Tensor y = linear.Forward(Tensor::Zeros({1, 4}));
  for (float v : y.vec()) EXPECT_EQ(v, 0.0f);
}

TEST(Linear, LoraStartsAsNoOp) {
  util::Rng rng(3);
  Linear linear(6, 6, &rng);
  Tensor x = Tensor::Randn({2, 6}, &rng);
  Tensor before = linear.Forward(x);
  linear.AttachLora(MakeLoraDelta(6, 6, 2, 1.0f, &rng));
  Tensor after = linear.Forward(x);
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(before.data()[i], after.data()[i]);
  }
  EXPECT_TRUE(linear.has_lora());
  linear.DetachLora();
  EXPECT_FALSE(linear.has_lora());
}

TEST(Linear, LoraDeltaChangesOutputAfterTraining) {
  util::Rng rng(4);
  Linear linear(4, 4, &rng);
  auto delta = MakeLoraDelta(4, 4, 2, 1.0f, &rng);
  // Make B nonzero by hand.
  for (float& v : delta->b.impl()->data) v = 0.5f;
  linear.AttachLora(delta);
  Tensor x = Tensor::Full({1, 4}, 1.0f);
  Tensor with = linear.Forward(x);
  linear.DetachLora();
  Tensor without = linear.Forward(x);
  float diff = 0.0f;
  for (size_t i = 0; i < with.size(); ++i) {
    diff += std::fabs(with.data()[i] - without.data()[i]);
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(Linear, QuantizeWeightsBoundedError) {
  util::Rng rng(5);
  Linear linear(32, 32, &rng);
  std::vector<float> original = linear.weight().vec();
  float err = linear.QuantizeWeights(16);
  EXPECT_GT(err, 0.0f);
  // Quantization error per block is bounded by scale/2 = absmax/14.
  float absmax = 0.0f;
  for (float v : original) absmax = std::max(absmax, std::fabs(v));
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_LE(std::fabs(linear.weight().vec()[i] - original[i]),
              absmax / 14.0f + 1e-6f);
  }
  // Idempotent: re-quantizing quantized weights is (almost) a no-op.
  EXPECT_NEAR(linear.QuantizeWeights(16), 0.0f, 1e-6f);
}

TEST(Embedding, LookupMatchesTable) {
  util::Rng rng(6);
  Embedding embedding(5, 3, &rng);
  Tensor rows = embedding.Forward({4, 0});
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(rows.at(0, c), embedding.table().at(4, c));
    EXPECT_FLOAT_EQ(rows.at(1, c), embedding.table().at(0, c));
  }
}

TEST(Mlp, ForwardShape) {
  util::Rng rng(7);
  Mlp mlp(6, 8, 2, &rng);
  Tensor y = mlp.Forward(Tensor::Randn({3, 6}, &rng));
  EXPECT_EQ(y.shape(), (Shape{3, 2}));
}

TEST(Module, NamedParameterPaths) {
  util::Rng rng(8);
  Mlp mlp(4, 4, 1, &rng);
  std::vector<std::string> names;
  for (const NamedParameter& p : mlp.NamedParameters()) {
    names.push_back(p.name);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "fc1.weight"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "fc2.bias"), names.end());
}

TEST(Module, SetTrainableFreezes) {
  util::Rng rng(9);
  Linear linear(3, 3, &rng);
  linear.SetTrainable(false);
  for (const Tensor& p : linear.Parameters()) {
    EXPECT_FALSE(p.requires_grad());
  }
  linear.SetTrainable(true);
  for (const Tensor& p : linear.Parameters()) {
    EXPECT_TRUE(p.requires_grad());
  }
}

TEST(Optimizer, SgdConvergesOnQuadratic) {
  Tensor x = Tensor::Scalar(5.0f, /*requires_grad=*/true);
  Sgd sgd({x}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    Tensor loss = Mul(x, x);
    SumAll(loss).Backward();
    sgd.Step();
    sgd.ZeroGrad();
  }
  EXPECT_NEAR(x.item(), 0.0f, 1e-3f);
}

TEST(Optimizer, AdamWConvergesOnQuadratic) {
  Tensor x = Tensor::Scalar(5.0f, /*requires_grad=*/true);
  AdamW adam({x}, {.lr = 0.3f, .weight_decay = 0.0f});
  for (int i = 0; i < 200; ++i) {
    SumAll(Mul(x, x)).Backward();
    adam.Step();
    adam.ZeroGrad();
  }
  EXPECT_NEAR(x.item(), 0.0f, 1e-2f);
}

TEST(Optimizer, WeightDecayShrinksWeights) {
  Tensor x = Tensor::Scalar(1.0f, /*requires_grad=*/true);
  AdamW adam({x}, {.lr = 0.1f, .weight_decay = 0.5f});
  // Gradient-free steps: ensure decay path needs a grad buffer.
  SumAll(MulScalar(x, 0.0f)).Backward();
  float before = x.item();
  adam.Step();
  EXPECT_LT(x.item(), before);
}

TEST(Optimizer, SkipsUntouchedParams) {
  Tensor used = Tensor::Scalar(1.0f, /*requires_grad=*/true);
  Tensor unused = Tensor::Scalar(1.0f, /*requires_grad=*/true);
  AdamW adam({used, unused}, {.lr = 0.1f});
  SumAll(Mul(used, used)).Backward();
  adam.Step();
  EXPECT_NE(used.item(), 1.0f);
  EXPECT_EQ(unused.item(), 1.0f);
}

TEST(Optimizer, ClipGradNorm) {
  Tensor a = Tensor::FromData({2}, {0, 0}, /*requires_grad=*/true);
  SumAll(MulScalar(a, 30.0f)).Backward();  // grad = [30, 30]
  float norm = ClipGradNorm({a}, 1.0f);
  EXPECT_NEAR(norm, std::sqrt(1800.0f), 1e-2f);
  float clipped = std::sqrt(a.grad()[0] * a.grad()[0] +
                            a.grad()[1] * a.grad()[1]);
  EXPECT_NEAR(clipped, 1.0f, 1e-4f);
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  util::Rng rng(10);
  Mlp source(4, 5, 2, &rng);
  Mlp target(4, 5, 2, &rng);
  std::string path = ::testing::TempDir() + "/ckpt_roundtrip.bin";
  ASSERT_TRUE(SaveParameters(source.NamedParameters(), path).ok());
  ASSERT_TRUE(LoadParameters(target.NamedParameters(), path).ok());
  std::vector<NamedParameter> a = source.NamedParameters();
  std::vector<NamedParameter> b = target.NamedParameters();
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < a[i].tensor.size(); ++j) {
      EXPECT_EQ(a[i].tensor.data()[j], b[i].tensor.data()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, ShapeMismatchRejected) {
  util::Rng rng(11);
  Mlp source(4, 5, 2, &rng);
  Mlp wrong(4, 6, 2, &rng);  // different hidden width
  std::string path = ::testing::TempDir() + "/ckpt_mismatch.bin";
  ASSERT_TRUE(SaveParameters(source.NamedParameters(), path).ok());
  util::Status status = LoadParameters(wrong.NamedParameters(), path);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsNotFound) {
  util::Rng rng(12);
  Mlp model(2, 2, 1, &rng);
  util::Status status =
      LoadParameters(model.NamedParameters(), "/nonexistent/dir/x.bin");
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
}

TEST(Checkpoint, TruncatedFileIsDataLoss) {
  util::Rng rng(13);
  Mlp model(4, 5, 2, &rng);
  std::string path = ::testing::TempDir() + "/ckpt_truncated.bin";
  ASSERT_TRUE(SaveParameters(model.NamedParameters(), path).ok());
  // Truncate the file to half.
  {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() / 2));
  }
  util::Status status = LoadParameters(model.NamedParameters(), path);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace infuserki::tensor
