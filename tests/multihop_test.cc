#include <gtest/gtest.h>

#include "eval/downstream.h"
#include "kg/synth.h"

namespace infuserki::eval {
namespace {

TEST(TwoHop, ItemsAreValidChains) {
  // UMLS entities appear as both heads and tails, so 2-hop chains exist.
  kg::KnowledgeGraph kg =
      kg::SyntheticUmls({.num_triplets = 200, .seed = 71, .chain_fraction = 0.3});
  kg::TemplateEngine templates;
  util::Rng rng(72);
  std::vector<TwoHopItem> items =
      Build2HopTask(kg, templates, /*max_items=*/20, /*max_candidates=*/5,
                    &rng);
  ASSERT_FALSE(items.empty());
  for (const TwoHopItem& item : items) {
    const kg::Triplet& hop1 = kg.triplets()[item.first_triplet];
    const kg::Triplet& hop2 = kg.triplets()[item.second_triplet];
    EXPECT_EQ(hop1.tail, hop2.head) << "not a chain";
    EXPECT_NE(hop1.relation, hop2.relation);
    // The gold candidate is the final answer.
    EXPECT_EQ(item.candidates[static_cast<size_t>(item.gold)],
              kg.entity(hop2.tail).name);
    // The prompt mentions the chain start but NOT the bridge entity.
    EXPECT_NE(item.prompt.find(kg.entity(hop1.head).name),
              std::string::npos);
    EXPECT_EQ(item.prompt.find(kg.entity(hop1.tail).name),
              std::string::npos)
        << "bridge entity leaked into prompt: " << item.prompt;
  }
}

TEST(TwoHop, EvaluatorRuns) {
  kg::KnowledgeGraph kg =
      kg::SyntheticUmls({.num_triplets = 150, .seed = 73, .chain_fraction = 0.3});
  kg::TemplateEngine templates;
  util::Rng rng(74);
  std::vector<TwoHopItem> items =
      Build2HopTask(kg, templates, 6, 4, &rng);
  ASSERT_FALSE(items.empty());
  std::vector<std::string> corpus;
  for (const TwoHopItem& item : items) {
    corpus.push_back(item.prompt);
    for (const std::string& candidate : item.candidates) {
      corpus.push_back(candidate);
    }
  }
  text::Tokenizer tokenizer = text::Tokenizer::Build(corpus);
  model::TransformerConfig config;
  config.vocab_size = tokenizer.vocab_size();
  config.dim = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  config.max_seq_len = 128;
  util::Rng model_rng(75);
  model::TransformerLM lm(config, &model_rng);
  double accuracy = Evaluate2HopTask(lm, tokenizer, items);
  EXPECT_GE(accuracy, 0.0);
  EXPECT_LE(accuracy, 1.0);
}

TEST(TwoHop, RespectsMaxItems) {
  kg::KnowledgeGraph kg =
      kg::SyntheticUmls({.num_triplets = 200, .seed = 76, .chain_fraction = 0.3});
  kg::TemplateEngine templates;
  util::Rng rng(77);
  std::vector<TwoHopItem> items = Build2HopTask(kg, templates, 3, 4, &rng);
  EXPECT_LE(items.size(), 3u);
}

}  // namespace
}  // namespace infuserki::eval
