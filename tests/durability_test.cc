// Corruption-fuzz and fault-injection coverage for the durability layer:
// framed (CRC32) binary checkpoints, atomic file publication, quarantine,
// and the failpoint registry. The central property: no truncated or
// bit-flipped artifact ever loads silently (or crashes) — every corrupt
// load surfaces kDataLoss / kInvalidArgument and leaves the caller able to
// degrade to retraining.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "kg/io.h"
#include "kg/synth.h"
#include "model/pretrain.h"
#include "tensor/checkpoint.h"
#include "tensor/tensor.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/fault.h"
#include "util/serialize.h"

namespace infuserki {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  ASSERT_TRUE(out.good()) << path;
}

bool IsCorruptionError(const util::Status& status) {
  return status.code() == util::StatusCode::kDataLoss ||
         status.code() == util::StatusCode::kInvalidArgument;
}

/// Runs `load` (which must return a Status) against every 64-byte-boundary
/// truncation of `path` and against one bit flip per file region.
template <typename LoadFn>
void FuzzFile(const std::string& path, const LoadFn& load) {
  std::string pristine = ReadFile(path);
  ASSERT_FALSE(pristine.empty());

  for (size_t cut = 0; cut < pristine.size(); cut += 64) {
    WriteFile(path, pristine.substr(0, cut));
    util::Status status = load();
    EXPECT_FALSE(status.ok()) << "truncation at " << cut << " loaded";
    EXPECT_TRUE(IsCorruptionError(status))
        << "truncation at " << cut << ": " << status.ToString();
  }

  // One flipped bit per region: start (header), middle (payload), end
  // (footer / trailer).
  for (size_t offset : {size_t{2}, pristine.size() / 2, pristine.size() - 3}) {
    std::string flipped = pristine;
    flipped[offset] = static_cast<char>(flipped[offset] ^ 0x10);
    if (flipped == pristine) continue;
    WriteFile(path, flipped);
    util::Status status = load();
    EXPECT_FALSE(status.ok()) << "bit flip at " << offset << " loaded";
    EXPECT_TRUE(IsCorruptionError(status))
        << "bit flip at " << offset << ": " << status.ToString();
  }

  WriteFile(path, pristine);
  EXPECT_TRUE(load().ok()) << "pristine copy must still load";
}

TEST(Crc32, MatchesKnownVector) {
  // The standard CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(util::Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(util::Crc32(""), 0u);
  // Incremental == one-shot.
  uint32_t chained = util::Crc32(std::string_view("6789"),
                                 util::Crc32(std::string_view("12345")));
  EXPECT_EQ(chained, 0xcbf43926u);
}

TEST(DurabilityFuzz, FramedSerializeRejectsAllCorruption) {
  std::string path = ::testing::TempDir() + "/frame_fuzz.bin";
  util::BinaryWriter writer(path);
  writer.WriteU32(0xfeedf00d);
  for (int i = 0; i < 100; ++i) writer.WriteF32(static_cast<float>(i));
  writer.WriteString("payload tail");
  ASSERT_TRUE(writer.Finish().ok());

  FuzzFile(path, [&] {
    util::BinaryReader reader(path);
    return reader.status();
  });
  std::remove(path.c_str());
}

TEST(DurabilityFuzz, TensorCheckpointRejectsAllCorruption) {
  util::Rng rng(3);
  tensor::Tensor a = tensor::Tensor::Randn({6, 5}, &rng);
  tensor::Tensor b = tensor::Tensor::Randn({17}, &rng);
  std::vector<tensor::NamedParameter> params = {{"a", a}, {"b", b}};
  std::string path = ::testing::TempDir() + "/ckpt_fuzz.ckpt";
  ASSERT_TRUE(tensor::SaveParameters(params, path).ok());

  FuzzFile(path, [&] { return tensor::LoadParameters(params, path); });
  std::remove(path.c_str());
}

model::PretrainSpec TinySpec(const std::string& cache_dir) {
  model::PretrainSpec spec;
  spec.arch.dim = 8;
  spec.arch.num_layers = 1;
  spec.arch.num_heads = 2;
  spec.arch.ffn_hidden = 16;
  spec.plain_docs = {"alpha maps to beta", "gamma maps to delta"};
  spec.steps = 2;
  spec.batch_size = 2;
  spec.seed = 5;
  spec.cache_dir = cache_dir;
  return spec;
}

TEST(DurabilityFuzz, PretrainCacheRejectsAllCorruption) {
  std::string dir = ::testing::TempDir() + "/cache_fuzz";
  std::filesystem::remove_all(dir);
  model::PretrainSpec spec = TinySpec(dir);
  (void)model::PretrainOrLoad(spec);
  std::string path = model::PretrainCachePath(spec);
  ASSERT_TRUE(std::filesystem::exists(path));

  FuzzFile(path, [&] {
    model::PretrainedModel out;
    return model::LoadCachedModel(path, spec, &out);
  });
  std::filesystem::remove_all(dir);
}

TEST(DurabilityFuzz, CorruptCacheQuarantinesAndRetrains) {
  std::string dir = ::testing::TempDir() + "/cache_degrade";
  std::filesystem::remove_all(dir);
  model::PretrainSpec spec = TinySpec(dir);
  (void)model::PretrainOrLoad(spec);
  std::string path = model::PretrainCachePath(spec);
  std::string pristine = ReadFile(path);
  std::string flipped = pristine;
  flipped[pristine.size() / 2] =
      static_cast<char>(flipped[pristine.size() / 2] ^ 0x01);
  WriteFile(path, flipped);

  // Graceful degradation: the corrupt cache is moved aside and the model is
  // retrained from scratch (final_loss > 0 distinguishes training from a
  // cache load, which reports 0).
  model::PretrainedModel retrained = model::PretrainOrLoad(spec);
  EXPECT_GT(retrained.final_loss, 0.0f);
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  std::filesystem::remove_all(dir);
}

TEST(DurabilityFuzz, KgTsvRejectsAllCorruption) {
  kg::KnowledgeGraph graph = kg::SyntheticUmls({.num_triplets = 30, .seed = 9});
  std::string path = ::testing::TempDir() + "/kg_fuzz.tsv";
  ASSERT_TRUE(kg::SaveTsv(graph, path).ok());

  FuzzFile(path, [&] { return kg::LoadTsv(path).status(); });
  std::remove(path.c_str());
}

/// Frames `payload_lines` exactly like kg::SaveTsv (header, CRC trailer),
/// so the frame verifies and the parser — not the checksum — must reject
/// the garbage inside.
std::string FrameKgPayload(const std::vector<std::string>& payload_lines) {
  std::string body;
  for (const std::string& line : payload_lines) {
    body += line;
    body += '\n';
  }
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", util::Crc32(body));
  return "#ikgtsv2\t" + std::to_string(payload_lines.size()) + "\n" + body +
         "#crc32\t" + std::string(crc_hex) + "\n";
}

TEST(KgTsv, GarbagePayloadLinesFailWithLineNumbersNeverCrash) {
  // Every case passes the frame check (count + CRC recomputed over the
  // garbage), so rejection must come from per-line parsing — as a Status
  // carrying the 1-based line number, never a crash.
  struct Case {
    const char* name;
    std::vector<std::string> lines;
    size_t bad_line;  // 1-based, counting the frame header as line 1
  } cases[] = {
      {"two fields", {"a\tb"}, 2},
      {"four fields", {"a\tb\tc\td"}, 2},
      {"no tabs", {"justoneword"}, 2},
      {"empty head", {"\trel\ttail"}, 2},
      {"empty relation", {"head\t\ttail"}, 2},
      {"empty tail", {"head\trel\t"}, 2},
      {"all empty", {"\t\t"}, 2},
      {"malformed relation header", {"#relation\tonly_two"}, 2},
      {"control bytes", {std::string("he\x01llo\tr\tt")}, 2},
      {"duplicate head+relation",
       {"a\tr\tb", "a\tr\tc"},
       3},
      {"garbage after valid lines",
       {"a\tr\tb", "x\ty"},
       3},
  };
  std::string path = ::testing::TempDir() + "/kg_garbage.tsv";
  for (const Case& c : cases) {
    WriteFile(path, FrameKgPayload(c.lines));
    auto loaded = kg::LoadTsv(path);
    ASSERT_FALSE(loaded.ok()) << c.name;
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument)
        << c.name << ": " << loaded.status().ToString();
    std::string needle = ":" + std::to_string(c.bad_line) + ":";
    EXPECT_NE(loaded.status().message().find(needle), std::string::npos)
        << c.name << " should name line " << c.bad_line << ", got: "
        << loaded.status().ToString();
  }
  std::remove(path.c_str());
}

TEST(KgTsv, CrlfPayloadLinesParse) {
  std::string path = ::testing::TempDir() + "/kg_crlf.tsv";
  WriteFile(path, FrameKgPayload({"london\tcapital_of\tengland\r"}));
  auto loaded = kg::LoadTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_triplets(), size_t{1});
  EXPECT_GE(loaded->FindEntity("england"), 0);
  std::remove(path.c_str());
}

TEST(KgTsv, LegacyHeaderlessFilesStillLoad) {
  std::string path = ::testing::TempDir() + "/kg_legacy.tsv";
  WriteFile(path, "london\tcapital_of\tengland\n");
  auto loaded = kg::LoadTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_triplets(), size_t{1});
  std::remove(path.c_str());
}

TEST(KgTsv, EmptyFileIsDataLoss) {
  std::string path = ::testing::TempDir() + "/kg_empty.tsv";
  WriteFile(path, "");
  auto loaded = kg::LoadTsv(path);
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(AtomicFile, CommitPublishesAndLeavesNoTemp) {
  std::string path = ::testing::TempDir() + "/atomic_commit.txt";
  util::AtomicFileWriter writer(path);
  writer.stream() << "hello durable world";
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_EQ(ReadFile(path), "hello durable world");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(AtomicFile, UncommittedWriterLeavesNoTrace) {
  std::string path = ::testing::TempDir() + "/atomic_abandoned.txt";
  std::remove(path.c_str());
  {
    util::AtomicFileWriter writer(path);
    writer.stream() << "never published";
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(AtomicFile, TransientFaultIsRetried) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  faults.Clear();
  ASSERT_TRUE(faults.Configure("io/atomic_write=fail@1").ok());
  std::string path = ::testing::TempDir() + "/atomic_retry.txt";
  util::RetryOptions fast{.max_attempts = 3, .base_delay_ms = 1};
  EXPECT_TRUE(
      util::WriteFileAtomic(path, "survived", "io/atomic_write", fast).ok());
  EXPECT_EQ(ReadFile(path), "survived");
  EXPECT_EQ(faults.hits("io/atomic_write"), uint64_t{2});
  faults.Clear();
  std::remove(path.c_str());
}

TEST(AtomicFile, PermanentFaultFailsWithoutPublishing) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  faults.Clear();
  ASSERT_TRUE(faults.Configure("io/atomic_write=fail@1+").ok());
  std::string path = ::testing::TempDir() + "/atomic_perm.txt";
  std::remove(path.c_str());
  util::RetryOptions fast{.max_attempts = 3, .base_delay_ms = 1};
  util::Status status =
      util::WriteFileAtomic(path, "doomed", "io/atomic_write", fast);
  EXPECT_EQ(status.code(), util::StatusCode::kInternal);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_EQ(faults.hits("io/atomic_write"), uint64_t{3});
  faults.Clear();
}

TEST(AtomicFile, QuarantineMovesFileAside) {
  std::string path = ::testing::TempDir() + "/quarantine_me.bin";
  WriteFile(path, "rotten bytes");
  ASSERT_TRUE(util::QuarantineFile(path).ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_EQ(ReadFile(path + ".corrupt"), "rotten bytes");
  EXPECT_EQ(util::QuarantineFile(path).code(),
            util::StatusCode::kNotFound);
  std::remove((path + ".corrupt").c_str());
}

TEST(FaultRegistry, NthHitSemantics) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  faults.Clear();
  ASSERT_TRUE(faults.Configure("test/point=fail@2").ok());
  EXPECT_TRUE(faults.Hit("test/point").ok());
  EXPECT_EQ(faults.Hit("test/point").code(), util::StatusCode::kInternal);
  EXPECT_TRUE(faults.Hit("test/point").ok());  // transient: only the Nth
  EXPECT_EQ(faults.hits("test/point"), uint64_t{3});
  EXPECT_TRUE(faults.Hit("unarmed/point").ok());
  faults.Clear();
}

TEST(FaultRegistry, FailFromIsPermanent) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  faults.Clear();
  ASSERT_TRUE(faults.Configure("test/point=fail@2+").ok());
  EXPECT_TRUE(faults.Hit("test/point").ok());
  EXPECT_FALSE(faults.Hit("test/point").ok());
  EXPECT_FALSE(faults.Hit("test/point").ok());
  faults.Clear();
}

TEST(FaultRegistry, ProbabilisticStreamIsDeterministic) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  auto draw_pattern = [&] {
    faults.Clear();
    EXPECT_TRUE(faults.Configure("test/prob=prob:0.5:1234").ok());
    std::vector<bool> pattern;
    for (int i = 0; i < 32; ++i) pattern.push_back(faults.Hit("test/prob").ok());
    return pattern;
  };
  std::vector<bool> first = draw_pattern();
  std::vector<bool> second = draw_pattern();
  EXPECT_EQ(first, second);
  // A 0.5 stream that never fails (or always fails) in 32 draws would be
  // astronomically unlikely — and useless for testing.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 32);
  faults.Clear();
}

TEST(RetryWithBackoff, OverallDeadlineStopsRetryingEarly) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  faults.Clear();
  ASSERT_TRUE(faults.Configure("test/point=fail@1+").ok());
  // 50 attempts at a flat 40 ms backoff would take ~2 s; a 60 ms budget
  // must cut the loop off after at most a couple of attempts and hand back
  // the last underlying error (not a synthetic deadline status).
  util::RetryOptions options{
      .max_attempts = 50, .base_delay_ms = 40, .multiplier = 1.0};
  options.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(60);
  util::Status status = util::RetryWithBackoff(
      [&] { return faults.Hit("test/point"); }, options, "deadline test");
  EXPECT_EQ(status.code(), util::StatusCode::kInternal);
  EXPECT_GE(faults.hits("test/point"), uint64_t{1});
  EXPECT_LT(faults.hits("test/point"), uint64_t{6});
  faults.Clear();
}

TEST(RetryWithBackoff, ExpiredDeadlineStillRunsFirstAttempt) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  faults.Clear();
  ASSERT_TRUE(faults.Configure("test/point=fail@1+").ok());
  util::RetryOptions options{.max_attempts = 5, .base_delay_ms = 1};
  options.deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  util::Status status = util::RetryWithBackoff(
      [&] { return faults.Hit("test/point"); }, options, "expired test");
  EXPECT_EQ(status.code(), util::StatusCode::kInternal);
  EXPECT_EQ(faults.hits("test/point"), uint64_t{1});
  faults.Clear();
}

TEST(RetryWithBackoff, NoDeadlineExhaustsAllAttempts) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  faults.Clear();
  ASSERT_TRUE(faults.Configure("test/point=fail@1+").ok());
  util::RetryOptions options{.max_attempts = 4, .base_delay_ms = 1};
  util::Status status = util::RetryWithBackoff(
      [&] { return faults.Hit("test/point"); }, options, "unbounded test");
  EXPECT_EQ(status.code(), util::StatusCode::kInternal);
  EXPECT_EQ(faults.hits("test/point"), uint64_t{4});
  faults.Clear();
}

TEST(BoundDeadline, EpochInputsLeaveOptionsUnbounded) {
  const std::chrono::steady_clock::time_point epoch{};
  util::RetryOptions options;  // default: unbounded
  util::RetryOptions bounded = util::BoundDeadline(options, epoch);
  EXPECT_EQ(bounded.deadline, epoch);
  // Everything else passes through untouched.
  EXPECT_EQ(bounded.max_attempts, options.max_attempts);
  EXPECT_EQ(bounded.base_delay_ms, options.base_delay_ms);
  EXPECT_EQ(bounded.multiplier, options.multiplier);
}

TEST(BoundDeadline, OneSidedBoundWinsFromEitherSide) {
  const std::chrono::steady_clock::time_point epoch{};
  const auto bound =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);

  // Request deadline set, options unbounded: the request bound sticks.
  util::RetryOptions unbounded;
  EXPECT_EQ(util::BoundDeadline(unbounded, bound).deadline, bound);

  // Options deadline set, request without one: the configured bound
  // SURVIVES — the regression a plain `options.deadline = request` erases.
  util::RetryOptions configured;
  configured.deadline = bound;
  EXPECT_EQ(util::BoundDeadline(configured, epoch).deadline, bound);
}

TEST(BoundDeadline, EarliestOfTwoBoundsWins) {
  const auto now = std::chrono::steady_clock::now();
  const auto sooner = now + std::chrono::seconds(1);
  const auto later = now + std::chrono::seconds(9);

  util::RetryOptions options;
  options.deadline = later;
  EXPECT_EQ(util::BoundDeadline(options, sooner).deadline, sooner);
  options.deadline = sooner;
  EXPECT_EQ(util::BoundDeadline(options, later).deadline, sooner);
}

TEST(RetryWithBackoff, BoundedOptionsNeverOversleepTheTighterBound) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  faults.Clear();
  ASSERT_TRUE(faults.Configure("test/point=fail@1+").ok());
  // Server policy allows a leisurely 2 s retry budget, but the request's
  // own deadline lands in 60 ms; the merged options must cut off there.
  util::RetryOptions options{
      .max_attempts = 50, .base_delay_ms = 40, .multiplier = 1.0};
  options.deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  const auto request_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(60);
  const auto start = std::chrono::steady_clock::now();
  util::Status status = util::RetryWithBackoff(
      [&] { return faults.Hit("test/point"); },
      util::BoundDeadline(options, request_deadline), "bound test");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(status.code(), util::StatusCode::kInternal);
  EXPECT_LT(elapsed, std::chrono::milliseconds(500));
  faults.Clear();
}

TEST(FaultRegistry, MalformedSpecsAreRejected) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  faults.Clear();
  EXPECT_EQ(faults.Configure("no-equals-sign").code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(faults.Configure("p=unknownmode").code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(faults.Configure("p=fail@notanumber").code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(faults.Configure("p=prob:2.0").code(),
            util::StatusCode::kInvalidArgument);
  faults.Clear();
}

TEST(FaultRegistry, OffDisarmsPoint) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  faults.Clear();
  ASSERT_TRUE(faults.Configure("test/point=fail@1+").ok());
  EXPECT_FALSE(faults.Hit("test/point").ok());
  ASSERT_TRUE(faults.Configure("test/point=off").ok());
  EXPECT_TRUE(faults.Hit("test/point").ok());
  faults.Clear();
}

}  // namespace
}  // namespace infuserki
