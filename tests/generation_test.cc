#include <gtest/gtest.h>

#include "model/generation.h"
#include "model/pretrain.h"
#include "model/trainer.h"

namespace infuserki::model {
namespace {

// A model trained to echo a fixed response lets us test the generation and
// extraction paths deterministically.
class TrainedLmFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PretrainSpec spec;
    spec.arch.dim = 24;
    spec.arch.num_layers = 2;
    spec.arch.num_heads = 2;
    spec.arch.ffn_hidden = 48;
    spec.instruction_docs = {
        {"question : color of sky ? answer :", "blue ink"},
        {"question : color of grass ? answer :", "green moss"},
    };
    spec.extra_vocab_docs = {"( a ) ( b ) red dust"};
    spec.steps = 250;
    spec.lr = 1e-2f;
    spec.cache_dir = "";
    base_ = new PretrainedModel(PretrainOrLoad(spec));
  }
  static void TearDownTestSuite() { delete base_; }

  static PretrainedModel* base_;
};

PretrainedModel* TrainedLmFixture::base_ = nullptr;

TEST_F(TrainedLmFixture, GreedyDecodesTrainedResponse) {
  std::vector<int> prompt = base_->tokenizer.EncodeWithSpecials(
      "question : color of sky ? answer :", false);
  std::vector<int> generated = GreedyDecode(*base_->lm, prompt, 6);
  std::string text = base_->tokenizer.Decode(generated).value();
  EXPECT_EQ(text, "blue ink");
}

TEST_F(TrainedLmFixture, ScoreOptionsPrefersTrainedAnswer) {
  OptionScores scores = ScoreOptions(
      *base_->lm, base_->tokenizer, "question : color of sky ? answer :",
      {"green moss", "blue ink", "red dust"});
  EXPECT_EQ(scores.best, 1);
  EXPECT_GT(scores.probabilities[1], 0.5);
}

TEST_F(TrainedLmFixture, ExtractChosenOptionByText) {
  int chosen = ExtractChosenOption(
      *base_->lm, base_->tokenizer, "question : color of sky ? answer :",
      {"green moss", "blue ink", "red dust"});
  EXPECT_EQ(chosen, 1);
}

TEST_F(TrainedLmFixture, ExtractChosenOptionIsCaseInsensitive) {
  // Option texts arrive in KG surface casing while decoded responses are
  // all lowercase; containment must compare case-normalized on both sides.
  int chosen = ExtractChosenOption(
      *base_->lm, base_->tokenizer, "question : color of sky ? answer :",
      {"Green Moss", "Blue Ink", "Red Dust"});
  EXPECT_EQ(chosen, 1);
}

TEST_F(TrainedLmFixture, ExtractReturnsMinusOneWhenNothingMatches) {
  int chosen = ExtractChosenOption(
      *base_->lm, base_->tokenizer, "question : color of sky ? answer :",
      {"purple haze", "orange peel"});
  EXPECT_EQ(chosen, -1);
}

TEST_F(TrainedLmFixture, SampleDecodeZeroTemperatureIsGreedy) {
  std::vector<int> prompt = base_->tokenizer.EncodeWithSpecials(
      "question : color of sky ? answer :", false);
  util::Rng rng(9);
  std::vector<int> sampled =
      SampleDecode(*base_->lm, prompt, 6, &rng, /*temperature=*/0.0f);
  EXPECT_EQ(sampled, GreedyDecode(*base_->lm, prompt, 6));
}

TEST_F(TrainedLmFixture, SampleDecodeTopKStaysOnDistribution) {
  // With a peaked model and top_k=1, sampling must reproduce greedy.
  std::vector<int> prompt = base_->tokenizer.EncodeWithSpecials(
      "question : color of grass ? answer :", false);
  util::Rng rng(10);
  std::vector<int> sampled = SampleDecode(*base_->lm, prompt, 6, &rng,
                                          /*temperature=*/1.0f,
                                          /*top_k=*/1);
  EXPECT_EQ(sampled, GreedyDecode(*base_->lm, prompt, 6));
}

TEST_F(TrainedLmFixture, SequenceLogProbOrdersContinuations) {
  std::vector<int> prompt = base_->tokenizer.EncodeWithSpecials(
      "question : color of grass ? answer :", false);
  double good = SequenceLogProb(
      *base_->lm, prompt, base_->tokenizer.Encode("green moss"));
  double bad = SequenceLogProb(*base_->lm, prompt,
                               base_->tokenizer.Encode("blue ink"));
  EXPECT_GT(good, bad);
}

}  // namespace
}  // namespace infuserki::model
