#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/adapter_stack.h"
#include "model/decode_session.h"
#include "model/generation.h"
#include "model/transformer.h"
#include "text/tokenizer.h"
#include "util/rng.h"

// Bit-exactness suite for the KV-cache inference engine (DESIGN.md §7):
// every cached forward must reproduce the full-sequence forward
// byte-for-byte, across chunkings, prompt lengths, hooks, and prefix
// tuning. All comparisons are exact float equality on purpose — "close
// enough" would hide order-of-operations drift between the two paths.

namespace infuserki::model {
namespace {

using tensor::NoGradGuard;
using tensor::Tensor;

TransformerConfig SmallConfig() {
  TransformerConfig config;
  config.vocab_size = 40;
  config.dim = 16;
  config.num_layers = 3;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  config.max_seq_len = 24;
  return config;
}

std::vector<int> RandomTokens(size_t count, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<int> tokens(count);
  for (int& t : tokens) {
    // Avoid special ids so Decode/EOS handling never truncates.
    t = static_cast<int>(rng.UniformInt(4, 39));
  }
  return tokens;
}

void ExpectBitIdentical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.dim(0), b.dim(0));
  ASSERT_EQ(a.dim(1), b.dim(1));
  size_t count = a.dim(0) * a.dim(1);
  for (size_t i = 0; i < count; ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

/// Rows [row_begin, row_begin + rows) of `full` vs all rows of `part`.
void ExpectRowsBitIdentical(const Tensor& full, size_t row_begin,
                            const Tensor& part) {
  size_t cols = full.dim(1);
  ASSERT_EQ(cols, part.dim(1));
  ASSERT_LE(row_begin + part.dim(0), full.dim(0));
  for (size_t r = 0; r < part.dim(0); ++r) {
    const float* a = full.data() + (row_begin + r) * cols;
    const float* b = part.data() + r * cols;
    for (size_t c = 0; c < cols; ++c) {
      ASSERT_EQ(a[c], b[c]) << "row " << row_begin + r << " col " << c;
    }
  }
}

/// The pre-engine greedy loop: full forward over the whole sequence each
/// step. The reference implementation cached decode must match exactly.
std::vector<int> GreedyFullRecompute(const TransformerLM& lm,
                                     const std::vector<int>& prompt,
                                     size_t max_new_tokens,
                                     const ForwardOptions& options = {}) {
  NoGradGuard no_grad;
  std::vector<int> sequence = prompt;
  std::vector<int> generated;
  for (size_t step = 0; step < max_new_tokens; ++step) {
    if (sequence.size() >= lm.config().max_seq_len) break;
    Tensor logits = lm.Logits(sequence, options);
    size_t vocab = logits.dim(1);
    const float* row = logits.data() + (logits.dim(0) - 1) * vocab;
    int best = 0;
    for (size_t v = 1; v < vocab; ++v) {
      if (row[v] > row[best]) best = static_cast<int>(v);
    }
    if (best == text::kEosId) break;
    generated.push_back(best);
    sequence.push_back(best);
  }
  return generated;
}

/// The pre-engine scoring arithmetic: one full forward, double-precision
/// log-softmax per continuation position.
double SequenceLogProbReference(const TransformerLM& lm,
                                const std::vector<int>& prompt,
                                const std::vector<int>& continuation,
                                const ForwardOptions& options = {}) {
  NoGradGuard no_grad;
  std::vector<int> full = prompt;
  full.insert(full.end(), continuation.begin(), continuation.end());
  std::vector<int> inputs(full.begin(), full.end() - 1);
  Tensor logits = lm.Logits(inputs, options);
  size_t vocab = logits.dim(1);
  double total = 0.0;
  for (size_t i = 0; i < continuation.size(); ++i) {
    const float* row = logits.data() + (prompt.size() - 1 + i) * vocab;
    float mx = row[0];
    for (size_t v = 1; v < vocab; ++v) mx = std::max(mx, row[v]);
    double sum = 0.0;
    for (size_t v = 0; v < vocab; ++v) {
      sum += std::exp(static_cast<double>(row[v]) - mx);
    }
    total +=
        static_cast<double>(row[continuation[i]]) - mx - std::log(sum);
  }
  return total;
}

class KvCacheTest : public ::testing::Test {
 protected:
  KvCacheTest() : rng_(7), lm_(SmallConfig(), &rng_) {}

  util::Rng rng_;
  TransformerLM lm_;
};

TEST_F(KvCacheTest, PrefillMatchesFullForwardAtEveryPromptLength) {
  NoGradGuard no_grad;
  size_t max = lm_.config().max_seq_len;
  for (size_t length = 1; length <= max; ++length) {
    std::vector<int> tokens = RandomTokens(length, /*seed=*/length);
    Tensor full = lm_.Logits(tokens);
    DecodeSession session(lm_);
    Tensor cached = session.Prefill(tokens);
    ExpectBitIdentical(full, cached);
  }
}

TEST_F(KvCacheTest, SingleTokenDecodeMatchesFullForwardRows) {
  NoGradGuard no_grad;
  std::vector<int> tokens = RandomTokens(lm_.config().max_seq_len, 11);
  Tensor full = lm_.Logits(tokens);
  DecodeSession session(lm_);
  for (size_t t = 0; t < tokens.size(); ++t) {
    Tensor step = session.Decode(tokens[t]);
    ASSERT_EQ(step.dim(0), size_t{1});
    ExpectRowsBitIdentical(full, t, step);
  }
  EXPECT_EQ(session.tokens(), tokens.size());
}

TEST_F(KvCacheTest, ChunkSplitPointDoesNotChangeLogits) {
  NoGradGuard no_grad;
  std::vector<int> tokens = RandomTokens(17, 13);
  Tensor full = lm_.Logits(tokens);
  for (size_t split = 1; split < tokens.size(); ++split) {
    DecodeSession session(lm_);
    std::vector<int> head(tokens.begin(),
                          tokens.begin() + static_cast<long>(split));
    std::vector<int> tail(tokens.begin() + static_cast<long>(split),
                          tokens.end());
    Tensor head_logits = session.Prefill(head);
    Tensor tail_logits = session.Prefill(tail);
    ExpectRowsBitIdentical(full, 0, head_logits);
    ExpectRowsBitIdentical(full, split, tail_logits);
  }
}

TEST_F(KvCacheTest, GreedyDecodeMatchesFullRecompute) {
  std::vector<int> prompt = RandomTokens(5, 17);
  EXPECT_EQ(GreedyDecode(lm_, prompt, 12),
            GreedyFullRecompute(lm_, prompt, 12));
}

TEST_F(KvCacheTest, GreedyDecodeMatchesFullRecomputeUpToMaxSeqLen) {
  // No max_new_tokens bound below the model ceiling: both loops must stop
  // at max_seq_len with identical streams.
  std::vector<int> prompt = RandomTokens(3, 19);
  EXPECT_EQ(GreedyDecode(lm_, prompt, 100),
            GreedyFullRecompute(lm_, prompt, 100));
}

TEST_F(KvCacheTest, AdapterHookParity) {
  // InfuserKI-w/o-Ro stack (no gate): the adapter chain is row-wise, so
  // cached decode must be bit-identical with the hook attached.
  core::AdapterStackOptions adapter_options;
  adapter_options.use_infuser = false;
  adapter_options.bottleneck = 8;
  core::KnowledgeAdapterStack stack(lm_.config().dim,
                                    lm_.config().num_layers,
                                    adapter_options);
  // Perturb the zero-initialized up-projections so deltas are non-trivial.
  util::Rng weight_rng(23);
  for (Tensor& t : stack.AdapterParameters()) {
    for (size_t i = 0; i < t.impl()->data.size(); ++i) {
      t.impl()->data[i] +=
          static_cast<float>(weight_rng.Uniform(-0.05, 0.05));
    }
  }
  ASSERT_FALSE(stack.SequenceStateful());
  ForwardOptions options;
  options.ffn_hook = &stack;

  NoGradGuard no_grad;
  std::vector<int> tokens = RandomTokens(14, 29);
  Tensor full = lm_.Logits(tokens, options);
  DecodeSession session(lm_, options);
  std::vector<int> head(tokens.begin(), tokens.begin() + 9);
  Tensor head_logits = session.Prefill(head);
  ExpectRowsBitIdentical(full, 0, head_logits);
  for (size_t t = 9; t < tokens.size(); ++t) {
    ExpectRowsBitIdentical(full, t, session.Decode(tokens[t]));
  }

  std::vector<int> prompt = RandomTokens(4, 31);
  EXPECT_EQ(GreedyDecode(lm_, prompt, 10, options),
            GreedyFullRecompute(lm_, prompt, 10, options));
}

TEST_F(KvCacheTest, AttentionPlacementAdapterParity) {
  core::AdapterStackOptions adapter_options;
  adapter_options.use_infuser = false;
  adapter_options.bottleneck = 8;
  adapter_options.placement = core::AdapterPlacement::kAttention;
  core::KnowledgeAdapterStack stack(lm_.config().dim,
                                    lm_.config().num_layers,
                                    adapter_options);
  util::Rng weight_rng(37);
  for (Tensor& t : stack.AdapterParameters()) {
    for (size_t i = 0; i < t.impl()->data.size(); ++i) {
      t.impl()->data[i] +=
          static_cast<float>(weight_rng.Uniform(-0.05, 0.05));
    }
  }
  ForwardOptions options;
  options.attn_hook = &stack;
  NoGradGuard no_grad;
  std::vector<int> tokens = RandomTokens(12, 41);
  Tensor full = lm_.Logits(tokens, options);
  DecodeSession session(lm_, options);
  Tensor cached = session.Prefill(tokens);
  ExpectBitIdentical(full, cached);
}

TEST_F(KvCacheTest, PrefixTuningParity) {
  // Learned prefix rows are seeded into the cache head once and must be
  // indistinguishable from the per-forward concatenation path.
  PrefixKv prefix;
  prefix.prefix_len = 3;
  util::Rng prefix_rng(43);
  for (size_t l = 0; l < lm_.config().num_layers; ++l) {
    prefix.keys.push_back(Tensor::RandUniform(
        {prefix.prefix_len, lm_.config().dim}, &prefix_rng, -0.3f, 0.3f));
    prefix.values.push_back(Tensor::RandUniform(
        {prefix.prefix_len, lm_.config().dim}, &prefix_rng, -0.3f, 0.3f));
  }
  ForwardOptions options;
  options.prefix = &prefix;

  NoGradGuard no_grad;
  std::vector<int> tokens = RandomTokens(10, 47);
  Tensor full = lm_.Logits(tokens, options);
  DecodeSession session(lm_, options);
  std::vector<int> head(tokens.begin(), tokens.begin() + 6);
  ExpectRowsBitIdentical(full, 0, session.Prefill(head));
  for (size_t t = 6; t < tokens.size(); ++t) {
    ExpectRowsBitIdentical(full, t, session.Decode(tokens[t]));
  }
}

TEST_F(KvCacheTest, SequenceLogProbMatchesReferenceArithmetic) {
  for (size_t prompt_len : {size_t{1}, size_t{4}, size_t{9}}) {
    std::vector<int> prompt = RandomTokens(prompt_len, 53 + prompt_len);
    for (size_t cont_len : {size_t{1}, size_t{2}, size_t{5}}) {
      std::vector<int> continuation =
          RandomTokens(cont_len, 59 + cont_len);
      EXPECT_EQ(SequenceLogProb(lm_, prompt, continuation),
                SequenceLogProbReference(lm_, prompt, continuation))
          << "prompt_len=" << prompt_len << " cont_len=" << cont_len;
    }
  }
}

TEST_F(KvCacheTest, ScoreOptionsMatchesPerOptionReference) {
  text::Tokenizer tokenizer = text::Tokenizer::Build(
      {"what is the capital ? paris london berlin tokyo answer :"});
  util::Rng rng(61);
  TransformerConfig config = SmallConfig();
  config.vocab_size = tokenizer.vocab_size();
  TransformerLM lm(config, &rng);

  const std::string prompt = "what is the capital ? answer :";
  const std::vector<std::string> options_text = {"paris", "london berlin",
                                                 "tokyo"};
  OptionScores scores =
      ScoreOptions(lm, tokenizer, prompt, options_text);
  std::vector<int> prompt_ids = tokenizer.EncodeWithSpecials(prompt, false);
  ASSERT_EQ(scores.log_probs.size(), options_text.size());
  for (size_t i = 0; i < options_text.size(); ++i) {
    EXPECT_EQ(scores.log_probs[i],
              SequenceLogProbReference(lm, prompt_ids,
                                       tokenizer.Encode(options_text[i])))
        << "option " << i;
  }
}

TEST_F(KvCacheTest, RewindReproducesBitIdenticalLogits) {
  NoGradGuard no_grad;
  std::vector<int> prompt = RandomTokens(6, 67);
  std::vector<int> continuation_a = RandomTokens(4, 71);
  std::vector<int> continuation_b = RandomTokens(5, 73);

  DecodeSession session(lm_, {});
  session.Prefill(prompt);
  DecodeSession::Checkpoint mark = session.Save();
  Tensor first = session.Prefill(continuation_a);
  session.Rewind(mark);
  EXPECT_EQ(session.tokens(), prompt.size());
  session.Prefill(continuation_b);  // pollute, then rewind again
  session.Rewind(mark);
  Tensor second = session.Prefill(continuation_a);
  ExpectBitIdentical(first, second);
}

TEST_F(KvCacheTest, GatedAdapterRoutesToFullRecompute) {
  // With the Infuser gate the forward pools over the whole sequence
  // (non-causal), so generation must use the legacy path — and still
  // produce exactly what the legacy loop produces.
  core::AdapterStackOptions adapter_options;
  adapter_options.use_infuser = true;
  adapter_options.bottleneck = 8;
  core::KnowledgeAdapterStack stack(lm_.config().dim,
                                    lm_.config().num_layers,
                                    adapter_options);
  ASSERT_TRUE(stack.SequenceStateful());
  ForwardOptions options;
  options.ffn_hook = &stack;
  ASSERT_TRUE(HasSequenceStatefulHook(options));

  std::vector<int> prompt = RandomTokens(4, 79);
  EXPECT_EQ(GreedyDecode(lm_, prompt, 8, options),
            GreedyFullRecompute(lm_, prompt, 8, options));
  std::vector<int> continuation = RandomTokens(3, 83);
  EXPECT_EQ(SequenceLogProb(lm_, prompt, continuation, options),
            SequenceLogProbReference(lm_, prompt, continuation, options));
}

TEST_F(KvCacheTest, SessionRejectsSequenceStatefulHook) {
  core::AdapterStackOptions adapter_options;
  adapter_options.use_infuser = true;
  core::KnowledgeAdapterStack stack(lm_.config().dim,
                                    lm_.config().num_layers,
                                    adapter_options);
  ForwardOptions options;
  options.ffn_hook = &stack;
  EXPECT_DEATH(DecodeSession(lm_, options), "sequence-stateful");
}

TEST_F(KvCacheTest, CacheTracksPrefixRowsSeparately) {
  PrefixKv prefix;
  prefix.prefix_len = 2;
  for (size_t l = 0; l < lm_.config().num_layers; ++l) {
    prefix.keys.push_back(
        Tensor::Zeros({prefix.prefix_len, lm_.config().dim}));
    prefix.values.push_back(
        Tensor::Zeros({prefix.prefix_len, lm_.config().dim}));
  }
  ForwardOptions options;
  options.prefix = &prefix;
  NoGradGuard no_grad;
  KvCache cache(lm_.config().num_layers);
  lm_.LogitsIncremental(RandomTokens(5, 89), &cache, options);
  EXPECT_EQ(cache.tokens(), size_t{5});
  EXPECT_EQ(cache.prefix_rows(), size_t{2});
  EXPECT_EQ(cache.layer(0)->rows(), size_t{7});
  cache.TruncateTokens(1);
  EXPECT_EQ(cache.tokens(), size_t{1});
  EXPECT_EQ(cache.layer(0)->rows(), size_t{3});
}

}  // namespace
}  // namespace infuserki::model
