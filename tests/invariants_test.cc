// Invariant-enforcement tests: the library's CHECK contracts must actually
// fire on misuse (death tests), and the Status macros must propagate.

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace infuserki {
namespace {

using tensor::Tensor;

TEST(TensorDeath, ShapeMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({3, 3});
  EXPECT_DEATH((void)tensor::Add(a, b), "incompatible shapes");
}

TEST(TensorDeath, MatmulInnerDimMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({4, 5});
  EXPECT_DEATH((void)tensor::Matmul(a, b), "Matmul");
}

TEST(TensorDeath, ItemOnNonScalarAborts) {
  Tensor a = Tensor::Zeros({2});
  EXPECT_DEATH((void)a.item(), "non-scalar");
}

TEST(TensorDeath, BackwardOnNonScalarAborts) {
  Tensor a = Tensor::Zeros({2}, /*requires_grad=*/true);
  EXPECT_DEATH(a.Backward(), "scalar");
}

TEST(TensorDeath, SetRequiresGradOnOpResultAborts) {
  Tensor a = Tensor::Zeros({2}, /*requires_grad=*/true);
  Tensor b = tensor::MulScalar(a, 2.0f);
  EXPECT_DEATH(b.set_requires_grad(false), "non-leaf");
}

TEST(TensorDeath, EmbeddingOutOfRangeAborts) {
  Tensor table = Tensor::Zeros({3, 2});
  EXPECT_DEATH((void)tensor::EmbeddingLookup(table, {5}), "");
}

TEST(TensorDeath, AttentionBadKeyLengthAborts) {
  Tensor q = Tensor::Zeros({3, 4});
  Tensor k = Tensor::Zeros({5, 4});
  Tensor v = Tensor::Zeros({5, 4});
  // prefix_len 0 but Tk != Tq.
  EXPECT_DEATH((void)tensor::CausalSelfAttention(q, k, v, 2),
               "prefix_len");
}

TEST(TensorDeath, CrossEntropyNoValidTargetsAborts) {
  Tensor logits = Tensor::Zeros({2, 3});
  EXPECT_DEATH((void)tensor::CrossEntropy(logits, {-1, -1}, -1),
               "no valid targets");
}

namespace status_macros {

util::Status Fails() { return util::Status::NotFound("inner"); }

util::Status Propagates() {
  RETURN_IF_ERROR(Fails());
  return util::Status::Internal("unreachable");
}

util::StatusOr<int> ProducesValue() { return 41; }
util::StatusOr<int> ProducesError() {
  return util::Status::InvalidArgument("nope");
}

util::Status UsesAssign(bool fail, int* out) {
  ASSIGN_OR_RETURN(int value, fail ? ProducesError() : ProducesValue());
  *out = value + 1;
  return util::Status::OK();
}

}  // namespace status_macros

TEST(StatusMacros, ReturnIfErrorPropagates) {
  util::Status status = status_macros::Propagates();
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "inner");
}

TEST(StatusMacros, AssignOrReturnValueAndError) {
  int out = 0;
  EXPECT_TRUE(status_macros::UsesAssign(false, &out).ok());
  EXPECT_EQ(out, 42);
  util::Status status = status_macros::UsesAssign(true, &out);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace infuserki
