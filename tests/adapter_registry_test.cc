// Unit gate for the versioned adapter registry and the exportable
// position-wise adapter (DESIGN.md §12): round-trip bit-exactness, the
// gated-export precondition, and the quarantine + rollback state machine
// under injected `serve/adapter_load` faults.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/adapter_stack.h"
#include "model/serve_adapter.h"
#include "obs/metrics.h"
#include "serve/adapter_registry.h"
#include "tensor/tensor.h"
#include "util/fault.h"
#include "util/rng.h"

namespace infuserki::serve {
namespace {

constexpr size_t kDim = 16;
constexpr size_t kLayers = 3;

/// Fresh per-test registry directory (removed up front so reruns and
/// quarantine leftovers never leak between tests).
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/adapter_registry_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

core::AdapterStackOptions UngatedOptions() {
  core::AdapterStackOptions options;
  options.first_layer = 1;
  options.last_layer = 2;
  options.bottleneck = 4;
  options.use_infuser = false;  // w/o-Ro: the exportable form
  return options;
}

/// Seeds the stack with nonzero weights: a fresh stack's up-projections
/// are zero-initialized, which would make every delta — and thus every
/// bit-exactness comparison — trivially zero.
void Perturb(core::KnowledgeAdapterStack* stack, uint64_t seed) {
  util::Rng rng(seed);
  for (tensor::Tensor& t : stack->AdapterParameters()) {
    for (float& v : t.impl()->data) {
      v = static_cast<float>(rng.Normal(0.0, 0.1));
    }
  }
}

std::shared_ptr<const model::PositionWiseAdapter> Export(uint64_t seed) {
  core::KnowledgeAdapterStack stack(kDim, kLayers, UngatedOptions());
  Perturb(&stack, seed);
  auto exported = stack.ExportPositionWise();
  EXPECT_TRUE(exported.ok()) << exported.status();
  return std::move(exported).value();
}

void ExpectSameWeights(const model::PositionWiseAdapter& a,
                       const model::PositionWiseAdapter& b) {
  ASSERT_EQ(a.layers().size(), b.layers().size());
  ASSERT_EQ(a.attachment(), b.attachment());
  ASSERT_EQ(a.model_dim(), b.model_dim());
  ASSERT_EQ(a.bottleneck(), b.bottleneck());
  for (size_t i = 0; i < a.layers().size(); ++i) {
    const auto& la = a.layers()[i];
    const auto& lb = b.layers()[i];
    EXPECT_EQ(la.layer, lb.layer);
    EXPECT_EQ(la.down_weight.impl()->data, lb.down_weight.impl()->data);
    EXPECT_EQ(la.down_bias.impl()->data, lb.down_bias.impl()->data);
    EXPECT_EQ(la.up_weight.impl()->data, lb.up_weight.impl()->data);
    EXPECT_EQ(la.up_bias.impl()->data, lb.up_bias.impl()->data);
  }
}

class AdapterRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultRegistry::Get().Clear(); }
  void TearDown() override { util::FaultRegistry::Get().Clear(); }

  uint64_t Rollbacks() {
    return obs::Registry::Get().GetCounter("serve/swap_rollbacks")->Value();
  }
};

TEST_F(AdapterRegistryTest, GatedStackExportIsRejected) {
  core::AdapterStackOptions options;
  options.first_layer = 1;
  options.bottleneck = 4;
  options.use_infuser = true;  // gated: sequence-stateful, not exportable
  core::KnowledgeAdapterStack stack(kDim, kLayers, options);
  auto exported = stack.ExportPositionWise();
  EXPECT_EQ(exported.status().code(),
            util::StatusCode::kFailedPrecondition)
      << exported.status();
}

TEST_F(AdapterRegistryTest, ExportMatchesStackDeltasExactly) {
  core::KnowledgeAdapterStack stack(kDim, kLayers, UngatedOptions());
  Perturb(&stack, 11);
  auto adapter = stack.ExportPositionWise();
  ASSERT_TRUE(adapter.ok()) << adapter.status();

  util::Rng rng(12);
  std::vector<tensor::Tensor> inputs;
  for (size_t l = 0; l < kLayers; ++l) {
    inputs.push_back(tensor::Tensor::Randn({3, kDim}, &rng));
  }
  stack.BeginForward();
  model::PositionWiseAdapter::ChainState chain;
  for (size_t l = 0; l < kLayers; ++l) {
    tensor::Tensor from_stack =
        stack.FfnDelta(static_cast<int>(l), inputs[l]);
    tensor::Tensor from_export =
        adapter.value()->Delta(static_cast<int>(l), inputs[l], &chain);
    ASSERT_EQ(from_stack.defined(), from_export.defined()) << "layer " << l;
    if (!from_stack.defined()) continue;
    // Exact float equality: the export must be the same arithmetic, not an
    // approximation of it.
    EXPECT_EQ(from_stack.impl()->data, from_export.impl()->data)
        << "layer " << l;
  }
}

TEST_F(AdapterRegistryTest, PublishLoadRoundTripIsBitExact) {
  AdapterRegistry registry(FreshDir("roundtrip"));
  auto adapter = Export(21);

  auto published = registry.Publish(adapter);
  ASSERT_TRUE(published.ok()) << published.status();
  EXPECT_EQ(published.value().sequence, uint64_t{1});
  EXPECT_EQ(published.value().adapter.get(), adapter.get());

  auto loaded = registry.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().sequence, uint64_t{1});
  ExpectSameWeights(*adapter, *loaded.value().adapter);

  // Sequences are strictly increasing and listable.
  auto second = registry.Publish(Export(22));
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second.value().sequence, uint64_t{2});
  EXPECT_EQ(registry.ListSequences(), (std::vector<uint64_t>{1, 2}));
}

TEST_F(AdapterRegistryTest, PublishingNullAdapterIsInvalid) {
  AdapterRegistry registry(FreshDir("null"));
  auto published = registry.Publish(nullptr);
  EXPECT_EQ(published.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(AdapterRegistryTest, EmptyRegistryReportsNotFound) {
  AdapterRegistry registry(FreshDir("empty"));
  auto loaded = registry.LoadLatest();
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound)
      << loaded.status();
}

TEST_F(AdapterRegistryTest, CorruptLatestIsQuarantinedAndRolledBack) {
  std::string dir = FreshDir("corrupt");
  AdapterRegistry registry(dir);
  ASSERT_TRUE(registry.Publish(Export(31)).ok());
  auto good = registry.Publish(Export(32));
  ASSERT_TRUE(good.ok());

  // Hand-write a garbage "newest version" the CRC frame must reject.
  std::string bogus = registry.VersionPath(3);
  {
    std::ofstream out(bogus, std::ios::binary);
    out << "not an adapter checkpoint";
  }
  ASSERT_EQ(registry.ListSequences().size(), size_t{3});

  uint64_t rollbacks_before = Rollbacks();
  auto loaded = registry.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  // Rolled back to the newest GOOD version; the corrupt file is moved
  // aside and never offered again.
  EXPECT_EQ(loaded.value().sequence, uint64_t{2});
  ExpectSameWeights(*good.value().adapter, *loaded.value().adapter);
  EXPECT_GE(Rollbacks(), rollbacks_before + 1);
  EXPECT_FALSE(std::filesystem::exists(bogus));
  EXPECT_TRUE(std::filesystem::exists(bogus + ".corrupt"));
  EXPECT_EQ(registry.ListSequences(), (std::vector<uint64_t>{1, 2}));
}

TEST_F(AdapterRegistryTest, TransientLoadFaultIsRetriedWithoutQuarantine) {
  std::string dir = FreshDir("transient");
  AdapterRegistry registry(dir, {.max_attempts = 3, .base_delay_ms = 1});
  auto published = registry.Publish(Export(41));
  ASSERT_TRUE(published.ok());

  ASSERT_TRUE(util::FaultRegistry::Get()
                  .Configure("serve/adapter_load=fail@1")
                  .ok());
  uint64_t rollbacks_before = Rollbacks();
  auto loaded = registry.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().sequence, uint64_t{1});
  // The retry absorbed the transient fault: no quarantine, no rollback.
  EXPECT_EQ(Rollbacks(), rollbacks_before);
  EXPECT_TRUE(std::filesystem::exists(published.value().path));
}

TEST_F(AdapterRegistryTest, ExhaustedRetriesForceRollbackToOlderVersion) {
  std::string dir = FreshDir("exhausted");
  // max_attempts = 1: the injected transient fault becomes fatal for the
  // first candidate the walk touches.
  AdapterRegistry registry(dir, {.max_attempts = 1, .base_delay_ms = 1});
  auto v1 = registry.Publish(Export(51));
  ASSERT_TRUE(v1.ok());
  auto v2 = registry.Publish(Export(52));
  ASSERT_TRUE(v2.ok());

  ASSERT_TRUE(util::FaultRegistry::Get()
                  .Configure("serve/adapter_load=fail@1")
                  .ok());
  uint64_t rollbacks_before = Rollbacks();
  auto loaded = registry.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  // v2 burned the single attempt on the injected fault, got quarantined,
  // and the walk rolled back to v1.
  EXPECT_EQ(loaded.value().sequence, uint64_t{1});
  ExpectSameWeights(*v1.value().adapter, *loaded.value().adapter);
  EXPECT_GE(Rollbacks(), rollbacks_before + 1);
  EXPECT_FALSE(std::filesystem::exists(v2.value().path));
  EXPECT_TRUE(std::filesystem::exists(v2.value().path + ".corrupt"));
  EXPECT_EQ(registry.ListSequences(), (std::vector<uint64_t>{1}));
}

TEST_F(AdapterRegistryTest, AllVersionsFailingReportsUnavailable) {
  std::string dir = FreshDir("allfail");
  AdapterRegistry registry(dir, {.max_attempts = 1, .base_delay_ms = 1});
  ASSERT_TRUE(registry.Publish(Export(61)).ok());
  ASSERT_TRUE(registry.Publish(Export(62)).ok());

  // Permanent fault: every candidate load fails, every file quarantines.
  ASSERT_TRUE(util::FaultRegistry::Get()
                  .Configure("serve/adapter_load=fail@1+")
                  .ok());
  auto loaded = registry.LoadLatest();
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kUnavailable)
      << loaded.status();
  EXPECT_TRUE(registry.ListSequences().empty());
}

}  // namespace
}  // namespace infuserki::serve
