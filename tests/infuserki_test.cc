#include <gtest/gtest.h>

#include "core/detection.h"
#include "core/infuserki.h"
#include "core/ki_method.h"
#include "kg/synth.h"
#include "model/pretrain.h"

namespace infuserki::core {
namespace {

TEST(FindSubsequence, Basic) {
  EXPECT_EQ(FindSubsequence({1, 2, 3, 4}, {2, 3}), 1);
  EXPECT_EQ(FindSubsequence({1, 2, 3}, {1}), 0);
  EXPECT_EQ(FindSubsequence({1, 2, 3}, {3}), 2);
  EXPECT_EQ(FindSubsequence({1, 2, 3}, {4}), -1);
  EXPECT_EQ(FindSubsequence({1, 2}, {1, 2, 3}), -1);
  EXPECT_EQ(FindSubsequence({1, 2}, {}), -1);
  EXPECT_EQ(FindSubsequence({1, 2, 1, 2}, {1, 2}), 0);  // first match
}

TEST(InfuserKi, ForwardHookRouting) {
  util::Rng rng(1);
  model::TransformerConfig config;
  config.vocab_size = 30;
  config.dim = 16;
  config.num_layers = 3;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  model::TransformerLM lm(config, &rng);

  InfuserKiOptions ffn_options;
  ffn_options.adapters.first_layer = 0;
  InfuserKi ffn_method(&lm, ffn_options);
  EXPECT_NE(ffn_method.Forward().ffn_hook, nullptr);
  EXPECT_EQ(ffn_method.Forward().attn_hook, nullptr);

  InfuserKiOptions attn_options;
  attn_options.adapters.first_layer = 0;
  attn_options.adapters.placement = AdapterPlacement::kAttention;
  InfuserKi attn_method(&lm, attn_options);
  EXPECT_EQ(attn_method.Forward().ffn_hook, nullptr);
  EXPECT_NE(attn_method.Forward().attn_hook, nullptr);
}

TEST(InfuserKi, FreshMethodPreservesBaseOutputs) {
  // Before training, the adapted model must equal the base model exactly
  // (zero-init up-projections).
  util::Rng rng(2);
  model::TransformerConfig config;
  config.vocab_size = 30;
  config.dim = 16;
  config.num_layers = 3;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  model::TransformerLM lm(config, &rng);
  InfuserKiOptions options;
  options.adapters.first_layer = 0;
  InfuserKi method(&lm, options);
  tensor::NoGradGuard no_grad;
  tensor::Tensor base = lm.Logits({3, 4, 5});
  tensor::Tensor adapted = lm.Logits({3, 4, 5}, method.Forward());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_FLOAT_EQ(base.data()[i], adapted.data()[i]);
  }
}

TEST(InfuserKi, TrainableParameterCount) {
  util::Rng rng(3);
  model::TransformerConfig config;
  config.vocab_size = 30;
  config.dim = 16;
  config.num_layers = 4;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  model::TransformerLM lm(config, &rng);
  InfuserKiOptions options;
  options.adapters.first_layer = 1;
  options.adapters.bottleneck = 4;
  InfuserKi method(&lm, options);
  // 3 adapted layers x (down 16x4+4 + up 4x16+16 + infuser MLP).
  size_t per_layer_adapter = (16 * 4 + 4) + (4 * 16 + 16);
  size_t per_layer_infuser =
      (16 * options.adapters.infuser_hidden +
       options.adapters.infuser_hidden) +
      (options.adapters.infuser_hidden + 1);
  EXPECT_EQ(method.NumTrainableParameters(),
            3 * (per_layer_adapter + per_layer_infuser));
}

// Miniature end-to-end integration: pretrain a tiny base model on half a
// tiny KG, detect, integrate with InfuserKI, and verify the paper's
// qualitative claims: NR rises far above the vanilla level and RR stays
// high. Kept small enough for CI (~1 minute).
class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kg_ = new kg::KnowledgeGraph(
        kg::SyntheticUmls({.num_triplets = 48, .seed = 21}));
    templates_ = new kg::TemplateEngine();
    dataset_ = new kg::DatasetBuilder(kg_, templates_);

    // Pretraining corpus over half the triplets.
    util::Rng rng(22);
    std::vector<size_t> subset = rng.SampleIndices(48, 24);
    model::PretrainSpec spec;
    spec.arch.dim = 32;
    spec.arch.num_layers = 4;
    spec.arch.num_heads = 2;
    spec.arch.ffn_hidden = 64;
    spec.steps = 700;
    spec.lr = 5e-3f;
    for (int t = 1; t <= 2; ++t) {
      for (const kg::QaSample& sample :
           dataset_->BuildQa(subset, t, &rng)) {
        spec.instruction_docs.emplace_back(sample.prompt, sample.response);
      }
    }
    for (const kg::StatementSample& s : dataset_->BuildStatements(subset)) {
      spec.plain_docs.push_back(s.text);
    }
    std::vector<size_t> all(48);
    for (size_t i = 0; i < 48; ++i) all[i] = i;
    for (const kg::StatementSample& s : dataset_->BuildStatements(all)) {
      spec.extra_vocab_docs.push_back(s.text);
    }
    for (size_t i : all) {
      for (int t = 1; t <= kg::kNumTemplates; ++t) {
        spec.extra_vocab_docs.push_back(
            templates_->Question(*kg_, kg_->triplets()[i], t));
      }
    }
    spec.extra_vocab_docs.push_back("question answer yes no");
    base_ = new model::PretrainedModel(model::PretrainOrLoad(spec));

    util::Rng mcq_rng(23);
    kg::McqBuilder builder(kg_, templates_);
    detection_ = new DetectionResult(DetectKnowledge(
        *base_->lm, base_->tokenizer, builder.BuildAll(1, &mcq_rng)));
  }

  static void TearDownTestSuite() {
    delete detection_;
    delete base_;
    delete dataset_;
    delete templates_;
    delete kg_;
  }

  static kg::KnowledgeGraph* kg_;
  static kg::TemplateEngine* templates_;
  static kg::DatasetBuilder* dataset_;
  static model::PretrainedModel* base_;
  static DetectionResult* detection_;
};

kg::KnowledgeGraph* EndToEnd::kg_ = nullptr;
kg::TemplateEngine* EndToEnd::templates_ = nullptr;
kg::DatasetBuilder* EndToEnd::dataset_ = nullptr;
model::PretrainedModel* EndToEnd::base_ = nullptr;
DetectionResult* EndToEnd::detection_ = nullptr;

TEST_F(EndToEnd, DetectionSplitsKnowledge) {
  EXPECT_GT(detection_->known.size(), 5u);
  EXPECT_GT(detection_->unknown.size(), 5u);
  EXPECT_EQ(detection_->known.size() + detection_->unknown.size(), 48u);
}

TEST_F(EndToEnd, InfuserKiIntegratesWithoutForgetting) {
  KiTrainData data;
  data.tokenizer = &base_->tokenizer;
  data.kg = kg_;
  util::Rng rng(24);
  for (int t = 1; t <= 2; ++t) {
    for (kg::QaSample& s :
         dataset_->BuildQa(detection_->unknown, t, &rng)) {
      data.unknown_qa.push_back(std::move(s));
    }
    for (kg::QaSample& s : dataset_->BuildQa(detection_->known, t, &rng)) {
      data.known_qa.push_back(std::move(s));
    }
  }
  data.unknown_statements =
      dataset_->BuildStatements(detection_->unknown);

  InfuserKiOptions options;
  options.adapters.first_layer = 1;
  options.qa_epochs = 110;
  options.infuser_epochs = 20;
  options.rc_epochs = 2;
  InfuserKi method(base_->lm.get(), options);
  method.Train(data);

  // Evaluate on fresh MCQs.
  util::Rng eval_rng(25);
  kg::McqBuilder builder(kg_, templates_);
  auto accuracy = [&](const std::vector<size_t>& indices) {
    size_t correct = 0;
    for (size_t index : indices) {
      kg::Mcq mcq = builder.Build(index, 1, &eval_rng);
      if (AnswerMcq(*base_->lm, base_->tokenizer, mcq,
                    AnswerMode::kLikelihood,
                    method.Forward()) == mcq.correct) {
        ++correct;
      }
    }
    return static_cast<double>(correct) /
           static_cast<double>(indices.size());
  };
  double nr = accuracy(detection_->unknown);
  double rr = accuracy(detection_->known);
  // Loose thresholds: this is a pipeline-correctness test, not a paper run.
  EXPECT_GT(nr, 0.35) << "new knowledge was not integrated";
  EXPECT_GT(rr, 0.6) << "known knowledge was forgotten";

  // Fig. 6 invariant: the trained gate opens more on unknown inputs than
  // on known ones.
  tensor::NoGradGuard no_grad;
  auto mean_gate = [&](const std::vector<size_t>& indices) {
    double total = 0.0;
    size_t count = 0;
    model::ForwardOptions forward = method.Forward();
    for (size_t i = 0; i < 12 && i < indices.size(); ++i) {
      kg::Mcq mcq = builder.Build(indices[i], 1, &eval_rng);
      std::string text = kg::FormatQuestionPrompt(mcq) + " " +
                         mcq.options[static_cast<size_t>(mcq.correct)];
      (void)base_->lm->Hidden(
          base_->tokenizer.EncodeWithSpecials(text, false), forward);
      for (const auto& [layer, score] :
           method.stack().infusing_scores()) {
        total += score;
        ++count;
      }
    }
    return total / static_cast<double>(count);
  };
  double known_gate = mean_gate(detection_->known);
  double unknown_gate = mean_gate(detection_->unknown);
  EXPECT_GT(unknown_gate, known_gate + 0.05)
      << "Infuser gate does not separate known from unknown";
}

}  // namespace
}  // namespace infuserki::core
