#include <gtest/gtest.h>

#include "util/flags.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace infuserki::util {
namespace {

TEST(Split, Basic) {
  EXPECT_EQ(Split("a b c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("  a   b "), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(Split("").empty());
  EXPECT_EQ(Split("a,b;c", ",;"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Join, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(ToLower, Basic) {
  EXPECT_EQ(ToLower("AbC 12x"), "abc 12x");
}

TEST(Trim, Basic) {
  EXPECT_EQ(Trim("  x y \n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StartsEndsWith, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(ReplaceAll, Basic) {
  EXPECT_EQ(ReplaceAll("a[S]b[S]", "[S]", "x"), "axbx");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
}

TEST(EditDistance, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "xyz"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
}

TEST(EditDistance, Symmetry) {
  EXPECT_EQ(EditDistance("cardio", "cardigan"),
            EditDistance("cardigan", "cardio"));
}

TEST(FormatFloat, Basic) {
  EXPECT_EQ(FormatFloat(0.987, 2), "0.99");
  EXPECT_EQ(FormatFloat(1.0, 2), "1.00");
  EXPECT_EQ(FormatFloat(-0.5, 1), "-0.5");
}

TEST(Status, OkAndErrors) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status bad = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ToString(), "INVALID_ARGUMENT: bad shape");
}

TEST(StatusOr, ValueAndError) {
  StatusOr<int> value(42);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  StatusOr<int> error(Status::NotFound("nope"));
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(2);
  std::vector<size_t> sample = rng.SampleIndices(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(std::unique(sample.begin(), sample.end()), sample.end());
  for (size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleAll) {
  Rng rng(3);
  std::vector<size_t> sample = rng.SampleIndices(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(4);
  std::vector<int> v = {1, 2, 3, 4, 5};
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Flags, Parsing) {
  const char* argv[] = {"prog", "--alpha=1.5", "--name=test", "--on",
                        "positional", "--count=42"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 1.5);
  EXPECT_EQ(flags.GetString("name", ""), "test");
  EXPECT_TRUE(flags.GetBool("on", false));
  EXPECT_EQ(flags.GetInt("count", 0), 42);
  EXPECT_EQ(flags.GetInt("missing", 9), 9);
  EXPECT_FALSE(flags.Has("positional"));
}

}  // namespace
}  // namespace infuserki::util
