#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/tsne.h"

namespace infuserki::eval {
namespace {

TEST(Accuracy, Basic) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 3}, {1, 2, 3}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({0}, {1}), 0.0);
}

TEST(BinaryMacroF1, Perfect) {
  EXPECT_DOUBLE_EQ(BinaryMacroF1({1, 0, 1, 0}, {1, 0, 1, 0}), 1.0);
}

TEST(BinaryMacroF1, AllOneClassPredicted) {
  // Predicting all-positive on a balanced set: F1(pos)=2/3, F1(neg)=0.
  double f1 = BinaryMacroF1({1, 1, 1, 1}, {1, 0, 1, 0});
  EXPECT_NEAR(f1, (2.0 / 3.0 + 0.0) / 2.0, 1e-9);
}

TEST(BinaryMacroF1, KnownMixedValue) {
  // labels:  1 1 0 0 ; preds: 1 0 0 1
  // class 1: tp=1 fp=1 fn=1 -> F1 = 2/4 = 0.5 ; class 0 symmetric.
  EXPECT_NEAR(BinaryMacroF1({1, 0, 0, 1}, {1, 1, 0, 0}), 0.5, 1e-9);
}

TEST(MeanRate, Basic) {
  EXPECT_DOUBLE_EQ(MeanRate({1, 1, 0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(MeanRate({}), 0.0);
  EXPECT_DOUBLE_EQ(MeanRate({1}), 1.0);
}

TEST(Pca, RecoversDominantDirection) {
  // Points along the x-axis with small y noise: PC1 ~ x.
  std::vector<double> points;
  size_t n = 40;
  for (size_t i = 0; i < n; ++i) {
    double x = static_cast<double>(i) - 20.0;
    points.push_back(x);
    points.push_back(0.01 * ((i % 3) - 1.0));
  }
  std::vector<double> projected = PcaProject(points, n, 2, 1);
  // Projected coordinates must correlate almost perfectly with x.
  double mean_x = 0, mean_p = 0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += points[2 * i];
    mean_p += projected[i];
  }
  mean_x /= n;
  mean_p /= n;
  double cov = 0, var_x = 0, var_p = 0;
  for (size_t i = 0; i < n; ++i) {
    double dx = points[2 * i] - mean_x;
    double dp = projected[i] - mean_p;
    cov += dx * dp;
    var_x += dx * dx;
    var_p += dp * dp;
  }
  double corr = std::fabs(cov / std::sqrt(var_x * var_p));
  EXPECT_GT(corr, 0.999);
}

TEST(Tsne, SeparatesTwoGaussians) {
  util::Rng rng(1);
  size_t per_cluster = 20, dim = 10;
  std::vector<double> points;
  std::vector<int> labels;
  for (size_t i = 0; i < per_cluster; ++i) {
    for (size_t c = 0; c < dim; ++c) points.push_back(rng.Normal(0.0, 0.3));
    labels.push_back(0);
  }
  for (size_t i = 0; i < per_cluster; ++i) {
    for (size_t c = 0; c < dim; ++c) points.push_back(rng.Normal(5.0, 0.3));
    labels.push_back(1);
  }
  size_t n = 2 * per_cluster;
  TsneOptions options;
  options.iterations = 250;
  std::vector<double> coords = Tsne(points, n, dim, options);
  ASSERT_EQ(coords.size(), n * 2);
  for (double v : coords) EXPECT_TRUE(std::isfinite(v));
  double separation = SeparationRatio(coords, n, 2, labels);
  EXPECT_GT(separation, 2.0) << "t-SNE failed to separate clear clusters";
}

TEST(SeparationRatio, HigherForSeparatedData) {
  // Two 1-D clusters at 0 and 10 vs fully interleaved labels.
  std::vector<double> coords = {0, 0.1, 0.2, 10.0, 10.1, 10.2};
  double separated = SeparationRatio(coords, 6, 1, {0, 0, 0, 1, 1, 1});
  double interleaved = SeparationRatio(coords, 6, 1, {0, 1, 0, 1, 0, 1});
  EXPECT_GT(separated, interleaved);
  EXPECT_GT(separated, 10.0);
}

}  // namespace
}  // namespace infuserki::eval
