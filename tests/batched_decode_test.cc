#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "model/batched_session.h"
#include "model/decode_session.h"
#include "model/kv_cache.h"
#include "model/transformer.h"
#include "util/rng.h"

// Bit-exactness suite for ragged batched decode (DESIGN.md §11): every row
// of a batched Step must reproduce the single-sequence DecodeSession fed
// the same tokens byte-for-byte, across mixed prompt lengths, mid-decode
// admission, slot recycling, and snapshot/restore prefix sharing. All
// comparisons are exact float equality on purpose — "close enough" would
// hide order-of-operations drift between the packed and sequential paths.

namespace infuserki::model {
namespace {

using tensor::NoGradGuard;
using tensor::Tensor;

TransformerConfig SmallConfig() {
  TransformerConfig config;
  config.vocab_size = 40;
  config.dim = 16;
  config.num_layers = 3;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  config.max_seq_len = 32;
  return config;
}

std::vector<int> RandomTokens(size_t count, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<int> tokens(count);
  for (int& t : tokens) {
    // Avoid special ids so EOS handling never truncates.
    t = static_cast<int>(rng.UniformInt(4, 39));
  }
  return tokens;
}

void ExpectBitIdentical(const Tensor& a, const Tensor& b,
                        const std::string& what) {
  ASSERT_EQ(a.dim(0), b.dim(0)) << what;
  ASSERT_EQ(a.dim(1), b.dim(1)) << what;
  size_t count = a.dim(0) * a.dim(1);
  for (size_t i = 0; i < count; ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << what << " element " << i;
  }
}

int ArgmaxLast(const Tensor& logits) {
  size_t vocab = logits.dim(1);
  const float* row = logits.data() + (logits.dim(0) - 1) * vocab;
  int best = 0;
  for (size_t v = 1; v < vocab; ++v) {
    if (row[v] > row[best]) best = static_cast<int>(v);
  }
  return best;
}

class BatchedDecodeTest : public ::testing::Test {
 protected:
  BatchedDecodeTest() : rng_(1234), lm_(SmallConfig(), &rng_) {}

  util::Rng rng_;
  TransformerLM lm_;
};

// Mixed-length prompts prefilled together in one ragged step produce —
// row for row — the same full prefill logits as one session per prompt.
TEST_F(BatchedDecodeTest, BatchedPrefillMatchesSequential) {
  std::vector<std::vector<int>> prompts = {
      RandomTokens(7, 11), RandomTokens(1, 22), RandomTokens(13, 33),
      RandomTokens(4, 44)};

  BatchedDecodeSession batched(lm_, prompts.size());
  std::vector<BatchedDecodeSession::RowInput> rows;
  for (const std::vector<int>& prompt : prompts) {
    rows.push_back({batched.AcquireSlot(), prompt});
  }
  std::vector<Tensor> batched_logits = batched.Step(rows);

  for (size_t r = 0; r < prompts.size(); ++r) {
    DecodeSession sequential(lm_);
    Tensor reference = sequential.Prefill(prompts[r]);
    ExpectBitIdentical(batched_logits[r], reference,
                       "prefill row " + std::to_string(r));
  }
}

// Greedy decode across many steps: every row of the batch follows the
// exact token trajectory (and logits) of its own sequential session.
TEST_F(BatchedDecodeTest, BatchedGreedyDecodeMatchesSequential) {
  std::vector<std::vector<int>> prompts = {
      RandomTokens(5, 1), RandomTokens(9, 2), RandomTokens(2, 3)};
  const size_t steps = 8;

  BatchedDecodeSession batched(lm_, prompts.size());
  std::vector<BatchedDecodeSession::RowInput> rows;
  for (const std::vector<int>& prompt : prompts) {
    rows.push_back({batched.AcquireSlot(), prompt});
  }
  std::vector<Tensor> batched_logits = batched.Step(rows);

  std::vector<std::unique_ptr<DecodeSession>> sequential;
  std::vector<Tensor> reference_logits;
  for (const std::vector<int>& prompt : prompts) {
    sequential.push_back(std::make_unique<DecodeSession>(lm_));
    reference_logits.push_back(sequential.back()->Prefill(prompt));
  }

  for (size_t step = 0; step < steps; ++step) {
    std::vector<BatchedDecodeSession::RowInput> decode_rows;
    std::vector<int> expected_tokens;
    for (size_t r = 0; r < prompts.size(); ++r) {
      int batched_next = ArgmaxLast(batched_logits[r]);
      int reference_next = ArgmaxLast(reference_logits[r]);
      ASSERT_EQ(batched_next, reference_next)
          << "step " << step << " row " << r;
      decode_rows.push_back({rows[r].slot, {batched_next}});
      expected_tokens.push_back(reference_next);
    }
    batched_logits = batched.Step(decode_rows);
    for (size_t r = 0; r < prompts.size(); ++r) {
      reference_logits[r] = sequential[r]->Decode(expected_tokens[r]);
      ExpectBitIdentical(
          batched_logits[r], reference_logits[r],
          "step " + std::to_string(step) + " row " + std::to_string(r));
    }
  }
}

// Continuous batching's core move: a new prompt's prefill joins a step in
// which other rows decode single tokens. Neither the prefill nor the
// in-flight rows drift from their sequential references.
TEST_F(BatchedDecodeTest, MidDecodeAdmissionStaysBitExact) {
  std::vector<int> prompt_a = RandomTokens(6, 7);
  std::vector<int> prompt_b = RandomTokens(3, 8);
  std::vector<int> prompt_c = RandomTokens(10, 9);

  BatchedDecodeSession batched(lm_, 3);
  size_t slot_a = batched.AcquireSlot();
  size_t slot_b = batched.AcquireSlot();
  std::vector<Tensor> logits =
      batched.Step({{slot_a, prompt_a}, {slot_b, prompt_b}});

  DecodeSession seq_a(lm_), seq_b(lm_), seq_c(lm_);
  Tensor ref_a = seq_a.Prefill(prompt_a);
  Tensor ref_b = seq_b.Prefill(prompt_b);

  int next_a = ArgmaxLast(logits[0]);
  int next_b = ArgmaxLast(logits[1]);
  ASSERT_EQ(next_a, ArgmaxLast(ref_a));
  ASSERT_EQ(next_b, ArgmaxLast(ref_b));

  // Row C is admitted while A and B decode: one ragged step mixes a
  // 10-token prefill with two 1-token decodes.
  size_t slot_c = batched.AcquireSlot();
  logits = batched.Step(
      {{slot_a, {next_a}}, {slot_c, prompt_c}, {slot_b, {next_b}}});
  ExpectBitIdentical(logits[0], seq_a.Decode(next_a), "row a");
  ExpectBitIdentical(logits[1], seq_c.Prefill(prompt_c), "row c");
  ExpectBitIdentical(logits[2], seq_b.Decode(next_b), "row b");
}

// Releasing a slot and reusing it for a different prompt must leave no
// residue from the previous occupant.
TEST_F(BatchedDecodeTest, SlotRecyclingLeavesNoResidue) {
  std::vector<int> first = RandomTokens(12, 5);
  std::vector<int> second = RandomTokens(6, 6);

  BatchedDecodeSession batched(lm_, 1);
  size_t slot = batched.AcquireSlot();
  batched.Step({{slot, first}});
  batched.ReleaseSlot(slot);

  size_t reused = batched.AcquireSlot();
  EXPECT_EQ(reused, slot);
  EXPECT_EQ(batched.tokens(reused), 0u);
  std::vector<Tensor> logits = batched.Step({{reused, second}});

  DecodeSession sequential(lm_);
  ExpectBitIdentical(logits[0], sequential.Prefill(second), "recycled");
}

// Snapshot at the prompt boundary, restore into two fresh slots, decode
// both: each continuation is bit-exact with a sequential session that
// prefilled the prompt itself — the serving layer's prefix-sharing path.
TEST_F(BatchedDecodeTest, SharedSnapshotRestoreStaysBitExact) {
  std::vector<int> prompt = RandomTokens(8, 17);

  BatchedDecodeSession batched(lm_, 3);
  size_t warm = batched.AcquireSlot();
  std::vector<Tensor> prefill = batched.Step({{warm, prompt}});
  BatchedDecodeSession::SlotSnapshot snapshot = batched.Snapshot(warm);
  EXPECT_EQ(snapshot.tokens, prompt.size());
  int first = ArgmaxLast(prefill[0]);
  // Decode the warm row PAST the boundary first, proving the snapshot is
  // frozen rather than aliased to the live slot.
  batched.Step({{warm, {first}}});

  size_t row1 = batched.AcquireSlot();
  size_t row2 = batched.AcquireSlot();
  batched.Restore(row1, snapshot);
  batched.Restore(row2, snapshot);
  EXPECT_EQ(batched.tokens(row1), prompt.size());

  DecodeSession sequential(lm_);
  sequential.Prefill(prompt);
  Tensor reference = sequential.Decode(first);

  // Both restored rows continue with the same token; both must match the
  // sequential continuation exactly (and each other).
  std::vector<Tensor> logits =
      batched.Step({{row1, {first}}, {row2, {first}}});
  ExpectBitIdentical(logits[0], reference, "restored row 1");
  ExpectBitIdentical(logits[1], reference, "restored row 2");
}

// KvCache slot pooling: truncating or resetting one slot must not disturb
// the pages of another.
TEST(KvCacheSlots, SlotsAreIndependent) {
  NoGradGuard no_grad;
  util::Rng rng(99);
  TransformerLM lm(SmallConfig(), &rng);
  KvCache cache(lm.config().num_layers, 2);

  std::vector<int> tokens_a = RandomTokens(5, 1);
  std::vector<int> tokens_b = RandomTokens(7, 2);
  lm.HiddenBatched({{&tokens_a, 0}, {&tokens_b, 1}}, &cache);
  EXPECT_EQ(cache.tokens(0), 5u);
  EXPECT_EQ(cache.tokens(1), 7u);

  std::vector<float> slot1_k(cache.layer(0, 1)->k.data(),
                             cache.layer(0, 1)->k.data() +
                                 cache.layer(0, 1)->k.size());
  cache.TruncateTokens(2, 0);
  EXPECT_EQ(cache.tokens(0), 2u);
  EXPECT_EQ(cache.tokens(1), 7u);
  cache.ResetSlot(0);
  EXPECT_EQ(cache.tokens(0), 0u);
  EXPECT_FALSE(cache.seeded(0));
  ASSERT_EQ(cache.layer(0, 1)->k.size(), slot1_k.size());
  for (size_t i = 0; i < slot1_k.size(); ++i) {
    EXPECT_EQ(cache.layer(0, 1)->k.data()[i], slot1_k[i]) << i;
  }
}

}  // namespace
}  // namespace infuserki::model
