// Checkpoint/resume correctness for the training loop: optimizer state
// round trips, RNG stream continuation, snapshot rotation, fallback from a
// corrupt snapshot, and the headline property — a run interrupted by an
// injected fault and resumed is bit-identical to an uninterrupted one.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "model/pretrain.h"
#include "model/train_state.h"
#include "model/trainer.h"
#include "model/transformer.h"
#include "tensor/optimizer.h"
#include "text/tokenizer.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace infuserki::model {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(AdamWState, RoundTripRestoresWeightsMomentsAndStep) {
  util::Rng rng(7);
  tensor::Tensor a = tensor::Tensor::Randn({4, 3}, &rng);
  tensor::Tensor b = tensor::Tensor::Randn({5}, &rng);
  tensor::AdamW source({a, b}, {.lr = 0.01f});
  // Two steps with distinct gradients so both moments are non-trivial.
  for (float g : {0.5f, -0.25f}) {
    a.impl()->grad.assign(a.size(), g);
    b.impl()->grad.assign(b.size(), -g);
    source.Step();
  }

  std::string path = ::testing::TempDir() + "/adamw_state.bin";
  util::BinaryWriter writer(path);
  source.Serialize(&writer);
  ASSERT_TRUE(writer.Finish().ok());

  util::Rng other(1234);  // different init: restore must overwrite it
  tensor::Tensor a2 = tensor::Tensor::Randn({4, 3}, &other);
  tensor::Tensor b2 = tensor::Tensor::Randn({5}, &other);
  tensor::AdamW restored({a2, b2}, {.lr = 0.01f});
  util::BinaryReader reader(path);
  ASSERT_TRUE(restored.Deserialize(&reader).ok());

  EXPECT_EQ(restored.step_count(), source.step_count());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a2.vec()[i], a.vec()[i]);
  for (size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b2.vec()[i], b.vec()[i]);

  // Identical next step: the bias-correction counter and both moments must
  // have survived, or these trajectories diverge immediately.
  a.impl()->grad.assign(a.size(), 0.125f);
  b.impl()->grad.assign(b.size(), 0.125f);
  a2.impl()->grad.assign(a2.size(), 0.125f);
  b2.impl()->grad.assign(b2.size(), 0.125f);
  source.Step();
  restored.Step();
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a2.vec()[i], a.vec()[i]);
  for (size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b2.vec()[i], b.vec()[i]);
  std::filesystem::remove(path);
}

TEST(AdamWState, DeserializeRejectsParameterCountMismatch) {
  util::Rng rng(7);
  tensor::Tensor a = tensor::Tensor::Randn({4}, &rng);
  tensor::AdamW one({a}, {});
  std::string path = ::testing::TempDir() + "/adamw_mismatch.bin";
  util::BinaryWriter writer(path);
  one.Serialize(&writer);
  ASSERT_TRUE(writer.Finish().ok());

  tensor::Tensor b = tensor::Tensor::Randn({4}, &rng);
  tensor::Tensor c = tensor::Tensor::Randn({4}, &rng);
  std::vector<float> before = b.vec();
  tensor::AdamW two({b, c}, {});
  util::BinaryReader reader(path);
  EXPECT_FALSE(two.Deserialize(&reader).ok());
  // Transactional: the failed load touched nothing.
  EXPECT_EQ(b.vec(), before);
  std::filesystem::remove(path);
}

TEST(TrainState, SaveLoadRoundTripContinuesRngStream) {
  util::Rng rng(21);
  tensor::Tensor a = tensor::Tensor::Randn({3}, &rng);
  tensor::AdamW optimizer({a}, {});

  util::Rng stream(99);
  (void)stream.UniformInt(0, 1000);  // advance past the seed state
  TrainState state;
  state.next_step = 40;
  state.total_steps = 120;
  state.order = {2, 0, 1, 3};
  state.cursor = 3;
  state.losses = {1.5f, 1.25f, 1.0f};
  state.rng_state = stream.SaveState();

  std::string path = ::testing::TempDir() + "/train_state.bin";
  ASSERT_TRUE(SaveTrainState(path, state, optimizer).ok());

  TrainState loaded;
  tensor::AdamW fresh({a}, {});
  ASSERT_TRUE(LoadTrainState(path, &loaded, &fresh).ok());
  EXPECT_EQ(loaded.next_step, state.next_step);
  EXPECT_EQ(loaded.total_steps, state.total_steps);
  EXPECT_EQ(loaded.order, state.order);
  EXPECT_EQ(loaded.cursor, state.cursor);
  EXPECT_EQ(loaded.losses, state.losses);

  // The restored generator continues the exact stream of the original.
  util::Rng resumed(0);
  ASSERT_TRUE(resumed.RestoreState(loaded.rng_state).ok());
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(resumed.UniformInt(0, 1 << 30), stream.UniformInt(0, 1 << 30));
  }
  std::filesystem::remove(path);
}

TEST(TrainState, RestoreStateRejectsGarbage) {
  util::Rng rng(5);
  int64_t probe = rng.UniformInt(0, 1 << 20);
  util::Rng twin(5);
  EXPECT_FALSE(twin.RestoreState("not an engine state").ok());
  // The failed restore left the engine untouched.
  EXPECT_EQ(twin.UniformInt(0, 1 << 20), probe);
}

/// Fixture building two identical tiny models + trainers on demand.
struct ResumeRig {
  TransformerConfig config;
  text::Tokenizer tokenizer;
  std::vector<LmExample> examples;

  ResumeRig() {
    config.dim = 16;
    config.num_layers = 2;
    config.num_heads = 2;
    config.ffn_hidden = 32;
    std::vector<std::string> docs = {
        "paris is the capital of france",
        "rome is the capital of italy",
        "berlin is the capital of germany",
        "madrid is the capital of spain",
        "lisbon is the capital of portugal",
    };
    tokenizer = text::Tokenizer::Build(docs);
    config.vocab_size = tokenizer.vocab_size();
    for (const std::string& doc : docs) {
      examples.push_back(MakePlainExample(tokenizer, doc));
    }
  }

  std::unique_ptr<TransformerLM> MakeModel() const {
    util::Rng init(3);
    return std::make_unique<TransformerLM>(config, &init);
  }

  static LmTrainer MakeTrainer(TransformerLM* lm) {
    LmTrainer::Options options;
    options.lr = 1e-3f;
    options.batch_size = 2;
    options.seed = 31;
    return LmTrainer(lm, lm->Parameters(), options);
  }
};

void ExpectBitIdentical(const TransformerLM& a, const TransformerLM& b) {
  auto pa = a.NamedParameters();
  auto pb = b.NamedParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].name, pb[i].name);
    const std::vector<float>& va = pa[i].tensor.vec();
    const std::vector<float>& vb = pb[i].tensor.vec();
    ASSERT_EQ(va.size(), vb.size()) << pa[i].name;
    for (size_t j = 0; j < va.size(); ++j) {
      ASSERT_EQ(va[j], vb[j]) << pa[i].name << "[" << j << "]";
    }
  }
}

TEST(ResumeDeterminism, InterruptedRunResumesBitExactly) {
  ResumeRig rig;
  const size_t steps = 40;

  // Reference: uninterrupted run with checkpointing enabled (snapshot
  // writes must not perturb training).
  CheckpointPolicy policy_a{.dir = FreshDir("resume_a"), .every_n_steps = 10};
  auto lm_a = rig.MakeModel();
  LmTrainer trainer_a = ResumeRig::MakeTrainer(lm_a.get());
  float loss_a = trainer_a.TrainSteps(rig.examples, steps, {}, policy_a);

  // Interrupted run: the injected fault stops the loop at step 24 (hit #25),
  // after snapshots at steps 10 and 20.
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  faults.Clear();
  ASSERT_TRUE(faults.Configure("trainer/step=fail@25").ok());
  CheckpointPolicy policy_b{.dir = FreshDir("resume_b"), .every_n_steps = 10};
  auto lm_b = rig.MakeModel();
  LmTrainer trainer_b = ResumeRig::MakeTrainer(lm_b.get());
  (void)trainer_b.TrainSteps(rig.examples, steps, {}, policy_b);
  faults.Clear();

  // Resume: the second call restores step 20's snapshot (weights, moments,
  // RNG stream, visit order) and finishes the run.
  float loss_b = trainer_b.TrainSteps(rig.examples, steps, {}, policy_b);

  EXPECT_EQ(loss_a, loss_b);
  ExpectBitIdentical(*lm_a, *lm_b);
  std::filesystem::remove_all(policy_a.dir);
  std::filesystem::remove_all(policy_b.dir);
}

TEST(ResumeDeterminism, CorruptNewestSnapshotFallsBackToOlder) {
  ResumeRig rig;
  const size_t steps = 40;

  CheckpointPolicy policy_a{.dir = FreshDir("fallback_a"),
                            .every_n_steps = 10};
  auto lm_a = rig.MakeModel();
  LmTrainer trainer_a = ResumeRig::MakeTrainer(lm_a.get());
  float loss_a = trainer_a.TrainSteps(rig.examples, steps, {}, policy_a);

  util::FaultRegistry& faults = util::FaultRegistry::Get();
  faults.Clear();
  ASSERT_TRUE(faults.Configure("trainer/step=fail@25").ok());
  CheckpointPolicy policy_b{.dir = FreshDir("fallback_b"),
                            .every_n_steps = 10, .keep_last = 4};
  auto lm_b = rig.MakeModel();
  LmTrainer trainer_b = ResumeRig::MakeTrainer(lm_b.get());
  (void)trainer_b.TrainSteps(rig.examples, steps, {}, policy_b);
  faults.Clear();

  // Flip one byte in the newest snapshot (step 20): resume must quarantine
  // it, fall back to step 10, and still converge to the identical result.
  auto snapshots = ListTrainCheckpoints(policy_b.dir);
  ASSERT_EQ(snapshots.size(), size_t{2});
  std::string newest = snapshots.back().second;
  {
    std::fstream file(newest,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(40);
    char byte = 0;
    file.seekg(40);
    file.get(byte);
    file.seekp(40);
    file.put(static_cast<char>(byte ^ 0x04));
  }

  float loss_b = trainer_b.TrainSteps(rig.examples, steps, {}, policy_b);
  EXPECT_EQ(loss_a, loss_b);
  ExpectBitIdentical(*lm_a, *lm_b);
  EXPECT_TRUE(std::filesystem::exists(newest + ".corrupt"));
  std::filesystem::remove_all(policy_a.dir);
  std::filesystem::remove_all(policy_b.dir);
}

TEST(TrainState, RotationKeepsOnlyNewest) {
  ResumeRig rig;
  CheckpointPolicy policy{.dir = FreshDir("rotate"),
                          .every_n_steps = 10,
                          .keep_last = 2,
                          .resume = false};
  auto lm = rig.MakeModel();
  LmTrainer trainer = ResumeRig::MakeTrainer(lm.get());
  (void)trainer.TrainSteps(rig.examples, 40, {}, policy);

  // Snapshots land at 10, 20, 30 (never at the final step); rotation with
  // keep_last=2 leaves the newest two.
  auto snapshots = ListTrainCheckpoints(policy.dir);
  ASSERT_EQ(snapshots.size(), size_t{2});
  EXPECT_EQ(snapshots[0].first, uint64_t{20});
  EXPECT_EQ(snapshots[1].first, uint64_t{30});
  std::filesystem::remove_all(policy.dir);
}

TEST(TrainState, MismatchedHorizonIsNotResumed) {
  ResumeRig rig;
  CheckpointPolicy policy{.dir = FreshDir("horizon"), .every_n_steps = 10};
  auto lm = rig.MakeModel();
  LmTrainer trainer = ResumeRig::MakeTrainer(lm.get());
  (void)trainer.TrainSteps(rig.examples, 40, {}, policy);
  ASSERT_FALSE(ListTrainCheckpoints(policy.dir).empty());

  // A run with a different horizon must ignore those snapshots (the cosine
  // schedule would disagree) and start from scratch — which reaches step 10
  // and overwrites the old snapshot rather than resuming past it.
  auto lm2 = rig.MakeModel();
  LmTrainer trainer2 = ResumeRig::MakeTrainer(lm2.get());
  CheckpointPolicy policy2 = policy;
  (void)trainer2.TrainSteps(rig.examples, 20, {}, policy2);
  std::filesystem::remove_all(policy.dir);
}

}  // namespace
}  // namespace infuserki::model
