#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <memory>

#include "model/decode_session.h"
#include "model/generation.h"
#include "model/transformer.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "serve/prefix_cache.h"
#include "serve/server.h"
#include "text/tokenizer.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/threadpool.h"

// Concurrency stress suite for the ThreadSanitizer gate (DESIGN.md §9).
// Run under `ctest --preset tsan`: each test hammers one of the shared
// mutable surfaces the parallel eval paths depend on — threadpool
// schedule/wait churn, parallel MCQ decode over a shared model, obs
// counter/gauge/histogram mutation, and the lazy singletons' first touch —
// with at least kThreads threads, so any unsynchronized access shows up as
// a TSan report rather than a corrupted paper metric. The assertions are
// deliberately coarse (counts, finiteness): the point is the interleaving,
// not the values.

namespace infuserki {
namespace {

constexpr size_t kThreads = 8;

// Force a real multi-worker global pool before its first touch: on
// single-core hosts hardware concurrency is 1 and the parallel loops would
// run inline, draining all interleaving out of this suite. An explicit
// INFUSERKI_NUM_THREADS in the environment still wins (overwrite=0).
const bool kPoolWidthForced = [] {
  setenv("INFUSERKI_NUM_THREADS", "8", /*overwrite=*/0);
  return true;
}();

// ---------------------------------------------------------------------------
// Lazy-singleton first touch. This test must run first in this binary (gtest
// runs tests in declaration order within a file) so the racing threads below
// really do contend on the magic-static initialization of every process-wide
// registry, not on an already-constructed object.
TEST(RaceStress, SingletonFirstTouchIsConcurrent) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load()) {
      }
      // First touch of each registry from kThreads threads at once.
      obs::Registry& registry = obs::Registry::Get();
      registry.GetCounter("race/first_touch")->Increment();
      obs::Tracer::Get().enabled();
      util::FaultRegistry::Get().active();
      util::GlobalThreadPool();
      util::OnGlobalPoolWorker();
    });
  }
  while (ready.load() < static_cast<int>(kThreads)) {
  }
  go.store(true);
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(
      obs::Registry::Get().GetCounter("race/first_touch")->Value(),
      static_cast<uint64_t>(kThreads));
  // The gate is vacuous if the pool fell back to one worker (everything
  // below would run inline); kPoolWidthForced must have taken effect.
  ASSERT_TRUE(kPoolWidthForced);
  ASSERT_GE(util::GlobalThreadPool().num_threads(), size_t{2});
}

// ---------------------------------------------------------------------------
// ThreadPool schedule/wait churn: several external threads concurrently
// schedule batches and call the pool's global Wait(), interleaved with
// ParallelFor/ParallelForEach on the shared global pool.
TEST(RaceStress, ThreadPoolScheduleWaitChurn) {
  util::ThreadPool pool(kThreads);
  std::atomic<uint64_t> executed{0};
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&pool, &executed] {
      for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 8; ++i) {
          pool.Schedule([&executed] { executed.fetch_add(1); });
        }
        pool.Wait();
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  pool.Wait();
  EXPECT_EQ(executed.load(), uint64_t{kThreads * 20 * 8});
}

TEST(RaceStress, ParallelForEachNestsParallelFor) {
  std::atomic<uint64_t> inner{0};
  // Tasks on the global pool run nested ParallelFor loops, which must
  // detect the worker thread and run inline (OnGlobalPoolWorker).
  util::ParallelForEach(kThreads * 4, [&inner](size_t) {
    util::ParallelFor(64, 8, [&inner](size_t begin, size_t end) {
      inner.fetch_add(end - begin);
    });
  });
  EXPECT_EQ(inner.load(), uint64_t{kThreads * 4 * 64});
}

TEST(RaceStress, ConcurrentParallelForEachGroups) {
  // Private completion groups: concurrent ParallelForEach calls from
  // several external threads must each wait only on their own tasks.
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> callers;
  callers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&total] {
      for (int round = 0; round < 10; ++round) {
        util::ParallelForEach(16, [&total](size_t) { total.fetch_add(1); });
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(total.load(), uint64_t{4 * 10 * 16});
}

// ---------------------------------------------------------------------------
// Obs registries under concurrent mutation: counters/gauges/histograms
// updated from kThreads threads while another thread repeatedly snapshots,
// and trace spans recorded on every thread while Enable/Clear churn.
TEST(RaceStress, ObsMetricsConcurrentMutationAndSnapshot) {
  obs::Registry& registry = obs::Registry::Get();
  obs::Counter* counter = registry.GetCounter("race/obs_counter");
  obs::Gauge* gauge = registry.GetGauge("race/obs_gauge");
  obs::Gauge* high_water = registry.GetGauge("race/obs_high_water");
  obs::Histogram* histogram = registry.GetHistogram("race/obs_histogram");
  counter->Reset();
  histogram->Reset();
  constexpr int kPerThread = 400;
  std::atomic<bool> done{false};
  std::thread snapshotter([&registry, &done] {
    while (!done.load()) {
      obs::Registry::Snapshot snapshot = registry.TakeSnapshot();
      (void)snapshot;
      (void)registry.TextDump();
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        double value = static_cast<double>(t * kPerThread + i);
        gauge->Set(value);
        high_water->UpdateMax(value);
        histogram->Record(1e-6 * static_cast<double>(i + 1));
        // Late-registration path: lookup races against the snapshotter.
        registry.GetCounter("race/obs_counter_" + std::to_string(t))
            ->Increment();
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  done.store(true);
  snapshotter.join();
  EXPECT_EQ(counter->Value(), uint64_t{kThreads * kPerThread});
  EXPECT_EQ(histogram->Count(), uint64_t{kThreads * kPerThread});
  EXPECT_EQ(high_water->Value(),
            static_cast<double>(kThreads * kPerThread - 1));
}

// Regression for the first-sample min/max seeding race: Record() used to
// plain-store min/max when it saw count 0, which could overwrite a value a
// concurrent thread had just CAS-published — under a barrier start, min/max
// sometimes came back as a mid-range sample instead of the true extremes.
// With min_/max_ seeded to +/-inf the CAS loops alone are correct, so the
// extremes must be exact on every round, including the very first samples.
TEST(RaceStress, HistogramFirstSampleMinMaxSeeding) {
  obs::Histogram* histogram =
      obs::Registry::Get().GetHistogram("race/obs_first_sample");
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    histogram->Reset();
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> recorders;
    recorders.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      recorders.emplace_back([&, t] {
        ready.fetch_add(1);
        while (!go.load()) {
        }
        // Every thread's first Record races for the empty histogram.
        histogram->Record(static_cast<double>(t + 1) * 1e-3);
      });
    }
    while (ready.load() < static_cast<int>(kThreads)) {
    }
    go.store(true);
    for (std::thread& recorder : recorders) recorder.join();
    obs::HistogramStats stats = histogram->Stats();
    ASSERT_EQ(stats.count, static_cast<uint64_t>(kThreads)) << round;
    EXPECT_DOUBLE_EQ(stats.min, 1e-3) << "round " << round;
    EXPECT_DOUBLE_EQ(stats.max, static_cast<double>(kThreads) * 1e-3)
        << "round " << round;
  }
}

TEST(RaceStress, TraceSpansConcurrentWithEnableClear) {
  obs::Tracer& tracer = obs::Tracer::Get();
  tracer.Enable(256);
  std::atomic<bool> done{false};
  std::thread controller([&tracer, &done] {
    while (!done.load()) {
      tracer.Enable(128);
      (void)tracer.Events();
      tracer.Clear();
      tracer.Enable(256);
    }
  });
  std::vector<std::thread> spanners;
  spanners.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    spanners.emplace_back([] {
      for (int i = 0; i < 200; ++i) {
        OBS_SPAN("race/outer");
        OBS_SPAN("race/inner");
      }
    });
  }
  for (std::thread& spanner : spanners) spanner.join();
  done.store(true);
  controller.join();
  tracer.Disable();
  tracer.Clear();
}

// ---------------------------------------------------------------------------
// Fault registry: concurrent Hit/hits/Configure churn on armed points.
TEST(RaceStress, FaultRegistryConcurrentHits) {
  util::FaultRegistry& faults = util::FaultRegistry::Get();
  // Injected failures each log a WARN line; keep the stress run quiet.
  util::LogLevel previous_level = util::MinLogLevel();
  util::SetMinLogLevel(util::LogLevel::kError);
  ASSERT_TRUE(faults.Configure("race/point=prob:0.5:7").ok());
  std::vector<std::thread> hitters;
  hitters.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    hitters.emplace_back([&faults] {
      for (int i = 0; i < 200; ++i) {
        (void)faults.Hit("race/point").ok();
        (void)faults.hits("race/point");
      }
    });
  }
  for (std::thread& hitter : hitters) hitter.join();
  EXPECT_EQ(faults.hits("race/point"), uint64_t{kThreads * 200});
  faults.Clear();
  util::SetMinLogLevel(previous_level);
}

// ---------------------------------------------------------------------------
// Parallel MCQ decode: the production eval pattern — ParallelForEach fans
// MCQ scoring out over the global pool, each task running its own
// DecodeSession (prefill + save/rewind churn) against one shared model.
// The model weights are shared read-only; obs engine metrics are the shared
// mutable state.
TEST(RaceStress, ParallelMcqDecodeSharedModel) {
  model::TransformerConfig config;
  config.vocab_size = 32;
  config.dim = 8;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ffn_hidden = 16;
  config.max_seq_len = 16;
  util::Rng rng(1234);
  model::TransformerLM lm(config, &rng);

  const std::vector<int> prompt = {4, 5, 6, 7};
  const std::vector<std::vector<int>> continuations = {
      {8, 9}, {10, 11}, {12, 13}, {14, 15}};

  // Reference scores from a single-threaded pass; the parallel fan-out
  // must reproduce them bit-exactly (shared weights are read-only, all
  // per-sequence state lives in each task's private session).
  std::vector<double> expected;
  {
    tensor::NoGradGuard no_grad;
    model::DecodeSession session(lm);
    session.Prefill(prompt);
    model::DecodeSession::Checkpoint mark = session.Save();
    for (const std::vector<int>& continuation : continuations) {
      double lp = model::SequenceLogProb(lm, prompt, continuation);
      session.Rewind(mark);
      expected.push_back(lp);
    }
  }

  constexpr size_t kTasks = kThreads * 4;
  std::vector<double> scores(kTasks);
  util::ParallelForEach(kTasks, [&](size_t task) {
    tensor::NoGradGuard no_grad;
    model::DecodeSession session(lm);
    session.Prefill(prompt);
    model::DecodeSession::Checkpoint mark = session.Save();
    const std::vector<int>& continuation =
        continuations[task % continuations.size()];
    session.Prefill(continuation);
    session.Rewind(mark);
    scores[task] = model::SequenceLogProb(lm, prompt, continuation);
  });
  for (size_t task = 0; task < kTasks; ++task) {
    ASSERT_TRUE(std::isfinite(scores[task])) << "task " << task;
    EXPECT_EQ(scores[task], expected[task % continuations.size()])
        << "task " << task;
  }
}

// ---------------------------------------------------------------------------
// Sliding-window readers racing ticks: one thread ticks a shared window
// while kThreads readers pull windowed rates/deltas and writers churn the
// registry underneath — the DESIGN.md §13 SlidingWindow::mu_ leaf under
// concurrent load. A live MetricsExporter (1ms period, no files) runs
// through the same stretch with TickNow() churn from the test thread, so
// its internal window's tick path races its own background loop too.
TEST(RaceStress, SlidingWindowReadersRaceExporterTicks) {
  obs::Registry& registry = obs::Registry::Get();
  obs::Counter* counter = registry.GetCounter("race/window_counter");
  obs::Histogram* histogram = registry.GetHistogram("race/window_histogram");
  counter->Reset();
  histogram->Reset();

  obs::ExporterOptions options;
  options.period = std::chrono::milliseconds(1);
  options.window_seconds = 0.5;
  options.on_tick = [counter] { counter->Increment(); };
  obs::MetricsExporter exporter(options);

  obs::SlidingWindow window(/*window_seconds=*/0.5, /*max_frames=*/32);
  std::atomic<bool> done{false};
  std::thread ticker([&window, &done] {
    while (!done.load()) {
      window.Tick();
    }
  });
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        counter->Increment();
        histogram->Record(1e-5 * static_cast<double>(i + 1));
        (void)window.CounterRate("race/window_counter");
        (void)window.CounterDelta("race/window_counter");
        (void)window.HistogramDelta("race/window_histogram");
        (void)window.AllCounterRates();
        (void)window.CoveredSeconds();
        (void)window.frame_count();
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    exporter.TickNow();  // races the exporter's own Loop on tick_mu_
  }
  for (std::thread& reader : readers) reader.join();
  done.store(true);
  ticker.join();
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  EXPECT_GE(exporter.ticks(), uint64_t{50});
  // Every tick ran the on_tick hook plus kThreads * 200 reader increments.
  EXPECT_GE(counter->Value(), uint64_t{kThreads * 200});
}

// ---------------------------------------------------------------------------
// Prefix-cache swap churn: inserters publish entries across generations and
// readers share lookups while a swapper thread advances the active
// generation and invalidates the outgoing one — the §12 hot-swap path's
// cache traffic compressed into a tight loop. Assertions are coarse
// (budget respected, exact drain at the end); the interleaving is the test.
TEST(RaceStress, PrefixCacheGenerationSwapChurn) {
  constexpr size_t kBudget = 64;
  serve::PrefixCache cache(kBudget);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> generation{0};

  std::thread swapper([&cache, &done, &generation] {
    uint64_t gen = 0;
    while (!done.load()) {
      uint64_t next = gen + 1;
      cache.SetActiveGeneration(next);
      generation.store(next);
      cache.InvalidateGeneration(gen);  // races Insert/Lookup below
      gen = next;
    }
  });
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &generation, t] {
      for (int i = 0; i < 200; ++i) {
        uint64_t gen = (i % 4 == 0) ? 0 : generation.load();
        auto entry = std::make_shared<serve::PrefixCache::Entry>();
        entry->prompt = {static_cast<int>(t), i % 8};
        entry->generation = gen;
        (void)cache.Insert(std::move(entry));
        // Shared lookups: hits pin entries the swapper may be dropping.
        std::shared_ptr<const serve::PrefixCache::Entry> hit =
            cache.Lookup({static_cast<int>(t), i % 8}, gen);
        if (hit != nullptr) {
          EXPECT_EQ(hit->prompt.size(), size_t{2});
        }
        (void)cache.cached_tokens();
        (void)cache.entries();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  done.store(true);
  swapper.join();
  EXPECT_LE(cache.cached_tokens(), kBudget);
  size_t resident = cache.entries();
  EXPECT_EQ(cache.Clear(), resident);
  EXPECT_EQ(cache.entries(), size_t{0});
  EXPECT_EQ(cache.cached_tokens(), size_t{0});
}

// Greedy decode fan-out: concurrent sessions generating token streams from
// the shared model, mixed with metric churn from the same threads.
TEST(RaceStress, ParallelGreedyDecodeSharedModel) {
  model::TransformerConfig config;
  config.vocab_size = 32;
  config.dim = 8;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ffn_hidden = 16;
  config.max_seq_len = 16;
  util::Rng rng(99);
  model::TransformerLM lm(config, &rng);

  const std::vector<int> prompt = {4, 5, 6};
  const std::vector<int> reference = model::GreedyDecode(lm, prompt, 6);

  constexpr size_t kTasks = kThreads * 2;
  std::vector<std::vector<int>> generated(kTasks);
  util::ParallelForEach(kTasks, [&](size_t task) {
    generated[task] = model::GreedyDecode(lm, prompt, 6);
  });
  for (size_t task = 0; task < kTasks; ++task) {
    EXPECT_EQ(generated[task], reference) << "task " << task;
  }
}


// Submit() racing Shutdown(): the overload-control admission path
// (DESIGN.md §14) must resolve EVERY future no matter how the submit
// interleaves with teardown — late submits get kUnavailable promptly
// instead of a promise that never fires. Churn through full server
// lifecycles with concurrent multi-tenant submitters; a lost promise
// hangs the .get() and the test times out, a locking mistake is a TSan
// report.
TEST(RaceStress, ServeSubmitShutdownChurn) {
  std::vector<std::string> corpus = {"alpha beta gamma delta",
                                     "epsilon zeta eta theta"};
  text::Tokenizer tokenizer = text::Tokenizer::Build(corpus);
  model::TransformerConfig config;
  config.vocab_size = tokenizer.vocab_size();
  config.dim = 8;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ffn_hidden = 16;
  config.max_seq_len = 32;
  util::Rng rng(99);
  model::TransformerLM lm(config, &rng);

  constexpr int kRounds = 3;
  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 6;
  const char* tenants[] = {"a", "b", "c", ""};
  const serve::Priority tiers[] = {serve::Priority::kHigh,
                                   serve::Priority::kNormal,
                                   serve::Priority::kLow};

  for (int round = 0; round < kRounds; ++round) {
    serve::ServeOptions options;
    options.max_batch_rows = 2;
    options.queue_capacity = 8;
    options.watchdog_interval = std::chrono::milliseconds(5);
    options.admission.tenants["b"].queue_cap = 2;
    serve::InferenceServer server(lm, tokenizer, options);

    std::atomic<size_t> resolved{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          serve::Request request;
          request.prompt = "alpha beta gamma";
          request.max_new_tokens = 2;
          request.tenant_id = tenants[(t + i) % 4];
          request.priority = tiers[i % 3];
          serve::Response response = server.Submit(std::move(request)).get();
          // Any terminal classification is legal mid-teardown; a future
          // that never resolves is the bug this test exists to catch.
          switch (response.status.code()) {
            case util::StatusCode::kOk:
            case util::StatusCode::kResourceExhausted:
            case util::StatusCode::kCancelled:
            case util::StatusCode::kUnavailable:
            case util::StatusCode::kDeadlineExceeded:
              break;
            default:
              ADD_FAILURE() << "unexpected code: " << response.status;
          }
          resolved.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    // Tear the server down while submitters are mid-flight; later rounds
    // shift the race window across admission, decode, and drain.
    std::this_thread::sleep_for(std::chrono::milliseconds(5 * round));
    server.Shutdown();
    for (std::thread& s : submitters) s.join();
    EXPECT_EQ(resolved.load(), size_t{kSubmitters * kPerThread});
  }
}

}  // namespace
}  // namespace infuserki
