#ifndef INFUSERKI_TESTS_GRADCHECK_H_
#define INFUSERKI_TESTS_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace infuserki::testing {

/// Compares analytic gradients against central finite differences for a
/// scalar-valued function of several input tensors.
///
/// `fn` must rebuild the computation from scratch on every call (it is
/// invoked many times with perturbed inputs).
inline void ExpectGradientsMatch(
    const std::function<tensor::Tensor()>& fn,
    const std::vector<tensor::Tensor>& inputs, float eps = 1e-2f,
    float rtol = 5e-2f, float atol = 1e-3f) {
  // Analytic pass.
  for (const tensor::Tensor& input : inputs) input.ZeroGrad();
  tensor::Tensor loss = fn();
  loss.Backward();
  std::vector<std::vector<float>> analytic;
  for (const tensor::Tensor& input : inputs) {
    ASSERT_TRUE(input.requires_grad());
    std::vector<float> grad = input.grad();
    if (grad.empty()) grad.assign(input.size(), 0.0f);
    analytic.push_back(std::move(grad));
  }

  // Numeric pass.
  for (size_t t = 0; t < inputs.size(); ++t) {
    tensor::Tensor input = inputs[t];
    for (size_t i = 0; i < input.size(); ++i) {
      float original = input.data()[i];
      input.data()[i] = original + eps;
      float plus = fn().item();
      input.data()[i] = original - eps;
      float minus = fn().item();
      input.data()[i] = original;
      float numeric = (plus - minus) / (2.0f * eps);
      float abs_err = std::fabs(analytic[t][i] - numeric);
      float tol = atol + rtol * std::fabs(numeric);
      EXPECT_LE(abs_err, tol)
          << "tensor " << t << " element " << i << ": analytic "
          << analytic[t][i] << " vs numeric " << numeric;
    }
  }
}

}  // namespace infuserki::testing

#endif  // INFUSERKI_TESTS_GRADCHECK_H_
