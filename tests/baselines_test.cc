#include <gtest/gtest.h>

#include "core/ki_method.h"
#include "peft/calinet.h"
#include "peft/full_finetune.h"
#include "peft/lora.h"
#include "peft/prefix_tuning.h"
#include "peft/tpatcher.h"

namespace infuserki::peft {
namespace {

model::TransformerConfig TinyConfig(size_t vocab) {
  model::TransformerConfig config;
  config.vocab_size = vocab;
  config.dim = 16;
  config.num_layers = 3;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  return config;
}

core::KiTrainData TinyData(const text::Tokenizer* tokenizer,
                           const kg::KnowledgeGraph* kg) {
  core::KiTrainData data;
  data.tokenizer = tokenizer;
  data.kg = kg;
  kg::QaSample sample;
  sample.prompt = "question : what is x ? answer :";
  sample.response = "alpha";
  data.unknown_qa.push_back(sample);
  sample.response = "beta";
  sample.prompt = "question : what is y ? answer :";
  data.unknown_qa.push_back(sample);
  return data;
}

class BaselineFixture : public ::testing::Test {
 protected:
  BaselineFixture()
      : tokenizer_(text::Tokenizer::Build(
            {"question : what is x y ? answer : alpha beta"})),
        rng_(1),
        lm_(TinyConfig(tokenizer_.vocab_size()), &rng_) {}

  text::Tokenizer tokenizer_;
  util::Rng rng_;
  model::TransformerLM lm_;
  kg::KnowledgeGraph kg_;
};

TEST_F(BaselineFixture, LoraAttachesAndDetaches) {
  {
    LoraOptions options;
    options.epochs = 1;
    LoraMethod lora(&lm_, options);
    EXPECT_GT(lora.NumTrainableParameters(), 0u);
    EXPECT_TRUE(lm_.layer(0).wq().has_lora());
    EXPECT_TRUE(lm_.layer(0).ffn_down().has_lora());
  }
  // Destructor detached everything.
  EXPECT_FALSE(lm_.layer(0).wq().has_lora());
  EXPECT_FALSE(lm_.layer(0).ffn_down().has_lora());
}

TEST_F(BaselineFixture, LoraQvOnlyPlacement) {
  LoraOptions options;
  options.target_all_linear = false;
  LoraMethod lora(&lm_, options);
  EXPECT_TRUE(lm_.layer(0).wq().has_lora());
  EXPECT_TRUE(lm_.layer(0).wv().has_lora());
  EXPECT_FALSE(lm_.layer(0).wk().has_lora());
  EXPECT_FALSE(lm_.layer(0).ffn_gate().has_lora());
}

TEST_F(BaselineFixture, LoraTrainingReducesLoss) {
  LoraOptions options;
  options.epochs = 200;  // 1 step/epoch at this corpus size
  options.lr = 1e-2f;
  LoraMethod lora(&lm_, options);
  core::KiTrainData data = TinyData(&tokenizer_, &kg_);
  model::LmExample example = model::MakeInstructionExample(
      tokenizer_, data.unknown_qa[0].prompt, data.unknown_qa[0].response);
  float before = lm_.NextTokenLoss(example.tokens,
                                   example.loss_start).item();
  lora.Train(data);
  float after = lm_.NextTokenLoss(example.tokens,
                                  example.loss_start).item();
  // The base here is a *random* network (no pretraining), so low-rank
  // deltas can only move the loss so far; assert a clear improvement
  // rather than convergence (full convergence is covered by the
  // experiment-level integration tests on pretrained bases).
  EXPECT_LT(after, before - 0.2f);
}

TEST_F(BaselineFixture, QloraQuantizesBase) {
  std::vector<float> original = lm_.layer(0).wq().weight().vec();
  LoraOptions options;
  options.quantize_base = true;
  options.epochs = 1;
  LoraMethod qlora(&lm_, options);
  EXPECT_EQ(qlora.name(), "QLoRA");
  // Quantization changed (rounded) the weights.
  size_t changed = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    if (lm_.layer(0).wq().weight().vec()[i] != original[i]) ++changed;
  }
  EXPECT_GT(changed, original.size() / 2);
}

TEST_F(BaselineFixture, PrefixTuningForwardHasPrefix) {
  PrefixTuningOptions options;
  options.prefix_len = 3;
  PrefixTuningMethod prefix(&lm_, options);
  model::ForwardOptions forward = prefix.Forward();
  ASSERT_NE(forward.prefix, nullptr);
  EXPECT_EQ(forward.prefix->prefix_len, 3u);
  EXPECT_EQ(forward.prefix->keys.size(), 3u);  // one per layer
  EXPECT_EQ(prefix.NumTrainableParameters(), 2u * 3u * 3u * 16u);
}

TEST_F(BaselineFixture, CalinetSingleLayerHook) {
  CalinetOptions options;
  options.layer = 1;
  options.num_slots = 8;
  CalinetMethod calinet(&lm_, options);
  EXPECT_EQ(calinet.adapted_layer(), 1);
  util::Rng rng(2);
  tensor::Tensor input = tensor::Tensor::Randn({2, 16}, &rng);
  EXPECT_FALSE(calinet.FfnDelta(0, input).defined());
  tensor::Tensor delta = calinet.FfnDelta(1, input);
  ASSERT_TRUE(delta.defined());
  // Zero-init values: starts as a no-op.
  for (float v : delta.vec()) EXPECT_EQ(v, 0.0f);
}

TEST_F(BaselineFixture, CalinetDefaultLayerTwoThirds) {
  CalinetOptions options;
  CalinetMethod calinet(&lm_, options);
  EXPECT_EQ(calinet.adapted_layer(), 2);  // 3 layers * 2/3
}

TEST_F(BaselineFixture, TPatcherPatchesOnLastLayer) {
  TPatcherOptions options;
  options.epochs = 2;
  TPatcherMethod patcher(&lm_, options);
  EXPECT_EQ(patcher.num_patches(), 0u);  // lazy until Train
  core::KiTrainData data = TinyData(&tokenizer_, &kg_);
  patcher.Train(data);
  EXPECT_GT(patcher.num_patches(), 0u);
  util::Rng rng(3);
  tensor::Tensor input = tensor::Tensor::Randn({2, 16}, &rng);
  EXPECT_FALSE(patcher.FfnDelta(0, input).defined());
  EXPECT_TRUE(patcher.FfnDelta(2, input).defined());  // last layer
}

TEST_F(BaselineFixture, FullFinetuneUnfreezesEverything) {
  lm_.SetTrainable(false);
  FullFinetuneOptions options;
  options.epochs = 1;
  FullFinetuneMethod finetune(&lm_, options);
  core::KiTrainData data = TinyData(&tokenizer_, &kg_);
  finetune.Train(data);
  EXPECT_EQ(finetune.NumTrainableParameters(), lm_.NumParameters());
  for (const tensor::Tensor& p : lm_.Parameters()) {
    EXPECT_TRUE(p.requires_grad());
  }
}

TEST_F(BaselineFixture, BuildInstructionExamplesRespectsFlags) {
  core::KiTrainData data = TinyData(&tokenizer_, &kg_);
  kg::QaSample known;
  known.prompt = "question : known ? answer :";
  known.response = "alpha";
  data.known_qa.push_back(known);
  kg::YesNoSample yn;
  yn.prompt = "is it ? answer :";
  yn.answer = true;
  data.unknown_yesno.push_back(yn);
  EXPECT_EQ(core::BuildInstructionExamples(data, true, true).size(), 4u);
  EXPECT_EQ(core::BuildInstructionExamples(data, false, true).size(), 3u);
  EXPECT_EQ(core::BuildInstructionExamples(data, false, false).size(), 2u);
}

}  // namespace
}  // namespace infuserki::peft
