#include <gtest/gtest.h>

#include "core/adapter_stack.h"
#include "model/transformer.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace infuserki::core {
namespace {

AdapterStackOptions Opts(int first, int last,
                         AdapterPlacement placement =
                             AdapterPlacement::kFfn) {
  AdapterStackOptions options;
  options.first_layer = first;
  options.last_layer = last;
  options.placement = placement;
  options.bottleneck = 4;
  return options;
}

TEST(AdapterStack, AdaptedLayerRange) {
  KnowledgeAdapterStack stack(8, 6, Opts(2, 4));
  EXPECT_FALSE(stack.IsAdapted(0));
  EXPECT_FALSE(stack.IsAdapted(1));
  EXPECT_TRUE(stack.IsAdapted(2));
  EXPECT_TRUE(stack.IsAdapted(3));
  EXPECT_TRUE(stack.IsAdapted(4));
  EXPECT_FALSE(stack.IsAdapted(5));
}

TEST(AdapterStack, LastLayerDefaultsToDeepest) {
  KnowledgeAdapterStack stack(8, 6, Opts(1, -1));
  EXPECT_TRUE(stack.IsAdapted(5));
  EXPECT_FALSE(stack.IsAdapted(0));
}

TEST(AdapterStack, FreshStackIsExactNoOp) {
  // Zero-initialized up-projections: deltas must be exactly zero.
  KnowledgeAdapterStack stack(8, 4, Opts(0, -1));
  stack.BeginForward();
  util::Rng rng(1);
  for (int layer = 0; layer < 4; ++layer) {
    tensor::Tensor input = tensor::Tensor::Randn({3, 8}, &rng);
    tensor::Tensor delta = stack.FfnDelta(layer, input);
    ASSERT_TRUE(delta.defined());
    for (float v : delta.vec()) EXPECT_EQ(v, 0.0f);
  }
}

TEST(AdapterStack, NonAdaptedLayerReturnsUndefined) {
  KnowledgeAdapterStack stack(8, 6, Opts(3, 4));
  stack.BeginForward();
  util::Rng rng(2);
  tensor::Tensor input = tensor::Tensor::Randn({2, 8}, &rng);
  EXPECT_FALSE(stack.FfnDelta(0, input).defined());
  EXPECT_TRUE(stack.FfnDelta(3, input).defined());
}

TEST(AdapterStack, PlacementRouting) {
  KnowledgeAdapterStack ffn(8, 4, Opts(0, -1, AdapterPlacement::kFfn));
  KnowledgeAdapterStack attn(8, 4,
                             Opts(0, -1, AdapterPlacement::kAttention));
  util::Rng rng(3);
  tensor::Tensor input = tensor::Tensor::Randn({2, 8}, &rng);
  ffn.BeginForward();
  attn.BeginForward();
  EXPECT_TRUE(ffn.FfnDelta(0, input).defined());
  EXPECT_FALSE(ffn.AttnDelta(0, input).defined());
  EXPECT_FALSE(attn.FfnDelta(0, input).defined());
  EXPECT_TRUE(attn.AttnDelta(0, input).defined());
}

TEST(AdapterStack, InfusingScoresRecordedPerLayer) {
  KnowledgeAdapterStack stack(8, 5, Opts(1, 3));
  stack.BeginForward();
  util::Rng rng(4);
  tensor::Tensor input = tensor::Tensor::Randn({2, 8}, &rng);
  for (int layer = 0; layer < 5; ++layer) {
    (void)stack.FfnDelta(layer, input);
  }
  ASSERT_EQ(stack.infusing_scores().size(), 3u);
  EXPECT_EQ(stack.infusing_scores()[0].first, 1);
  EXPECT_EQ(stack.infusing_scores()[2].first, 3);
  for (const auto& [layer, score] : stack.infusing_scores()) {
    EXPECT_GE(score, 0.0f);
    EXPECT_LE(score, 1.0f);
  }
  EXPECT_EQ(stack.infuser_logits().size(), 3u);
  // BeginForward clears.
  stack.BeginForward();
  EXPECT_TRUE(stack.infusing_scores().empty());
}

TEST(AdapterStack, DefaultClosedGate) {
  // Fresh gates sit near zero (bias init), not at the sigmoid midpoint.
  KnowledgeAdapterStack stack(8, 3, Opts(0, -1));
  stack.BeginForward();
  util::Rng rng(5);
  tensor::Tensor input = tensor::Tensor::Randn({2, 8}, &rng, 0.1f);
  (void)stack.FfnDelta(0, input);
  EXPECT_LT(stack.infusing_scores()[0].second, 0.3f);
}

TEST(AdapterStack, GateOverride) {
  AdapterStackOptions options = Opts(0, -1);
  KnowledgeAdapterStack stack(8, 2, options);
  // Give the up-projection nonzero weights so deltas are visible.
  for (tensor::Tensor& t : stack.AdapterParameters()) {
    for (float& v : t.impl()->data) v = 0.1f;
  }
  util::Rng rng(6);
  tensor::Tensor input = tensor::Tensor::Randn({2, 8}, &rng);
  stack.set_gate_override(0.0f);
  stack.BeginForward();
  tensor::Tensor closed = stack.FfnDelta(0, input);
  for (float v : closed.vec()) EXPECT_EQ(v, 0.0f);
  stack.set_gate_override(1.0f);
  stack.BeginForward();
  tensor::Tensor open = stack.FfnDelta(0, input);
  float magnitude = 0.0f;
  for (float v : open.vec()) magnitude += std::fabs(v);
  EXPECT_GT(magnitude, 0.0f);
  stack.set_gate_override(-1.0f);
  EXPECT_EQ(stack.gate_override(), -1.0f);
}

TEST(AdapterStack, WithoutInfuserDeltaUngated) {
  AdapterStackOptions options = Opts(0, -1);
  options.use_infuser = false;
  KnowledgeAdapterStack stack(8, 2, options);
  stack.BeginForward();
  util::Rng rng(7);
  tensor::Tensor input = tensor::Tensor::Randn({2, 8}, &rng);
  (void)stack.FfnDelta(0, input);
  EXPECT_TRUE(stack.infusing_scores().empty());  // no gate evaluated
}

TEST(AdapterStack, ChainFlowsAcrossLayers) {
  // With nonzero adapters, the layer-1 delta must depend on the layer-0
  // input through the chain H_A^{l-1}.
  AdapterStackOptions options = Opts(0, -1);
  options.use_infuser = false;
  KnowledgeAdapterStack stack(8, 2, options);
  for (tensor::Tensor& t : stack.AdapterParameters()) {
    util::Rng rng(8);
    for (float& v : t.impl()->data) {
      v = static_cast<float>(rng.Normal(0.0, 0.1));
    }
  }
  util::Rng rng(9);
  tensor::Tensor layer0_a = tensor::Tensor::Randn({2, 8}, &rng);
  tensor::Tensor layer0_b = tensor::Tensor::Randn({2, 8}, &rng);
  tensor::Tensor layer1 = tensor::Tensor::Randn({2, 8}, &rng);

  stack.BeginForward();
  (void)stack.FfnDelta(0, layer0_a);
  tensor::Tensor delta_a = stack.FfnDelta(1, layer1);

  stack.BeginForward();
  (void)stack.FfnDelta(0, layer0_b);
  tensor::Tensor delta_b = stack.FfnDelta(1, layer1);

  float diff = 0.0f;
  for (size_t i = 0; i < delta_a.size(); ++i) {
    diff += std::fabs(delta_a.data()[i] - delta_b.data()[i]);
  }
  EXPECT_GT(diff, 1e-6f) << "chain state not carried across layers";
}

TEST(AdapterStack, ParameterSplit) {
  KnowledgeAdapterStack stack(8, 4, Opts(1, 2));
  size_t adapters = 0, infusers = 0;
  for (const tensor::Tensor& t : stack.AdapterParameters()) {
    adapters += t.size();
  }
  for (const tensor::Tensor& t : stack.InfuserParameters()) {
    infusers += t.size();
  }
  EXPECT_GT(adapters, 0u);
  EXPECT_GT(infusers, 0u);
  EXPECT_EQ(adapters + infusers, stack.NumParameters());
}

}  // namespace
}  // namespace infuserki::core
